// Crash-recovery differential suite for the write-ahead log: a
// recorded mutation run is truncated at every byte (and corrupted at
// sampled bytes), and the recovered pipeline must resolve to exactly
// what a from-scratch, never-crashed pipeline over the surviving
// mutation prefix resolves to — the repo's golden-digest notion of
// "recovered correctly", swept across fsync policies, engines, TTL
// windows, and compaction checkpoints.
package minoaner_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	minoaner "repro"
	"repro/internal/wal"
)

// walOp is one recorded mutation — exactly one WAL record.
type walOp struct {
	ingest  []minoaner.Description
	evict   []minoaner.Ref
	evictKB string
	start   bool
}

func applyOp(t *testing.T, p *minoaner.Pipeline, op walOp) {
	t.Helper()
	var err error
	switch {
	case op.start:
		_, err = p.Start()
	case op.evictKB != "":
		err = p.Current().EvictKB(op.evictKB)
	case op.evict != nil:
		err = p.Current().Evict(op.evict)
	default:
		err = p.Add(op.ingest)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// recoveryOps records the standard workload over a small two-KB world:
// a pre-Start load, Start, interleaved ingest batches and evictions.
// Evictions always target descriptions from the batch just ingested,
// so the same op list stays valid under a sliding TTL window.
func recoveryOps(t *testing.T, n int) []walOp {
	t.Helper()
	w := hardSessionWorld(t, 97, n)
	var alpha, beta []minoaner.Description
	for id := 0; id < w.Collection.Len(); id++ {
		d := w.Collection.Desc(id)
		wd := minoaner.Description{KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links}
		if d.KB == "alpha" {
			alpha = append(alpha, wd)
		} else {
			beta = append(beta, wd)
		}
	}
	ah, bh := len(alpha)/2, len(beta)/2
	extra := []minoaner.Description{
		{KB: "extra", URI: "http://extra/1", Attrs: []minoaner.Attribute{{Predicate: "name", Value: "ephemeral one"}}},
		{KB: "extra", URI: "http://extra/2", Attrs: []minoaner.Attribute{{Predicate: "name", Value: "ephemeral two"}}},
	}
	return []walOp{
		{ingest: alpha[:ah]}, // pre-Start corpus
		{start: true},
		{ingest: alpha[ah:]},
		{ingest: beta[:bh]},
		{evict: []minoaner.Ref{{KB: beta[0].KB, URI: beta[0].URI}}},
		{ingest: extra},
		{evictKB: "extra"},
		{ingest: beta[bh:]},
		{evict: []minoaner.Ref{
			{KB: beta[bh].KB, URI: beta[bh].URI},
			{KB: beta[bh+1].KB, URI: beta[bh+1].URI},
		}},
	}
}

// finishDigest resolves whatever state the pipeline holds to completion
// and canonicalizes it — the recovery-equivalence oracle. A pipeline
// with no session yet is Started first; an empty one digests "empty".
func finishDigest(t *testing.T, p *minoaner.Pipeline) string {
	t.Helper()
	s := p.Current()
	if s == nil {
		if p.NumDescriptions() == 0 {
			return "empty"
		}
		var err error
		if s, err = p.Start(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	return resultDigest(out)
}

// recordWorkload runs the ops through a write-ahead-logged pipeline and
// returns the raw log bytes.
func recordWorkload(t *testing.T, cfg minoaner.Config, ops []walOp) []byte {
	t.Helper()
	dir := t.TempDir()
	p, err := minoaner.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, p, op)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// surviveAndRecover writes a damaged log image into a fresh dir,
// counts the records that survive framing, and recovers a pipeline
// from it. The count step uses the wal reader directly — the same
// reader recovery uses — so the test can look up the matching
// mutation prefix.
func surviveAndRecover(t *testing.T, cfg minoaner.Config, image []byte) (int, *minoaner.Pipeline) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), image, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := wal.Open(dir, cfg.WALFsync)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	p, err := minoaner.Open(dir, cfg)
	if err != nil {
		t.Fatalf("recover with %d surviving records: %v", len(recs), err)
	}
	return len(recs), p
}

// expectedDigests resolves, for every mutation-prefix length, what a
// from-scratch pipeline over that prefix produces — computed lazily,
// once per length.
func expectedDigests(t *testing.T, cfg minoaner.Config, ops []walOp) func(k int) string {
	cache := make(map[int]string)
	return func(k int) string {
		if d, ok := cache[k]; ok {
			return d
		}
		p := minoaner.New(cfg)
		for _, op := range ops[:k] {
			applyOp(t, p, op)
		}
		d := finishDigest(t, p)
		cache[k] = d
		return d
	}
}

// TestWALRecoveryTruncationSweep is the kill-point sweep of the issue:
// the recorded log is cut at EVERY byte offset — mid-header, mid-
// payload, and on each frame boundary — and each cut must recover to
// the golden digest of a from-scratch session over the mutations whose
// frames survive in full. This is exactly the state a SIGKILL (or a
// power cut under fsync=always) at that write offset leaves behind.
func TestWALRecoveryTruncationSweep(t *testing.T) {
	cfg := minoaner.Defaults()
	cfg.Workers = 1
	cfg.CompactionThreshold = -1 // keep one frame per op: no checkpoint rotation
	ops := recoveryOps(t, 8)
	raw := recordWorkload(t, cfg, ops)

	// One frame per op — the log is the mutation sequence.
	k, full := surviveAndRecover(t, cfg, raw)
	if k != len(ops) {
		t.Fatalf("full log holds %d records, want %d", k, len(ops))
	}
	expect := expectedDigests(t, cfg, ops)
	if got := finishDigest(t, full); got != expect(len(ops)) {
		t.Fatalf("full-log recovery diverged from from-scratch")
	}
	full.Close()
	if expect(len(ops)) == "empty" {
		t.Fatal("workload resolves to nothing — the sweep would prove nothing")
	}

	stride := 1
	if testing.Short() || raceEnabled {
		stride = 17 // still hits every header/payload phase across frames
	}
	t.Logf("sweeping %d byte offsets (stride %d)", len(raw)+1, stride)
	for cut := 0; cut <= len(raw); cut += stride {
		k, p := surviveAndRecover(t, cfg, raw[:cut])
		got := finishDigest(t, p)
		p.Close()
		if want := expect(k); got != want {
			t.Fatalf("cut at byte %d (%d records survive): digest %s, want %s",
				cut, k, got, want)
		}
	}
}

// TestWALRecoveryCorruption flips bytes at sampled offsets (headers and
// payloads both land in the sample): recovery must stop at the last
// intact frame prefix and still equal the from-scratch session over
// those mutations — a checksum failure is a clean cut, never an error
// or a garbled state.
func TestWALRecoveryCorruption(t *testing.T) {
	cfg := minoaner.Defaults()
	cfg.Workers = 1
	cfg.CompactionThreshold = -1 // keep one frame per op: no checkpoint rotation
	ops := recoveryOps(t, 8)
	raw := recordWorkload(t, cfg, ops)
	expect := expectedDigests(t, cfg, ops)

	stride := 31
	if testing.Short() || raceEnabled {
		stride = 211
	}
	for pos := 0; pos < len(raw); pos += stride {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x5a
		k, p := surviveAndRecover(t, cfg, mut)
		got := finishDigest(t, p)
		p.Close()
		if want := expect(k); got != want {
			t.Fatalf("flip at byte %d (%d records survive): digest %s, want %s",
				pos, k, got, want)
		}
	}
}

// TestWALRecoveryGrid crosses fsync policy × engine × TTL: whatever
// combination wrote the log, a full recovery equals the from-scratch
// pipeline under the same configuration. (Digest comparison stays
// within one engine — MapReduce's documented float round-off keeps
// cross-engine bits out of scope, as everywhere in this repo.)
func TestWALRecoveryGrid(t *testing.T) {
	engines := []struct {
		name    string
		workers int
		mr      bool
	}{
		{"sequential", 1, false},
		{"shared", 4, false},
		{"mapreduce", 4, true},
	}
	policies := []struct {
		name string
		p    minoaner.FsyncPolicy
	}{
		{"always", minoaner.FsyncAlways},
		{"wave", minoaner.FsyncWave},
		{"off", minoaner.FsyncOff},
	}
	for _, eng := range engines {
		for _, pol := range policies {
			for _, ttl := range []int{0, 2} {
				t.Run(fmt.Sprintf("%s/fsync=%s/ttl=%d", eng.name, pol.name, ttl), func(t *testing.T) {
					cfg := minoaner.Defaults()
					cfg.Workers = eng.workers
					cfg.MapReduce = eng.mr
					cfg.TTL = ttl
					cfg.WALFsync = pol.p
					// Checkpoint rotation (TTL's default compaction
					// threshold would trigger it) has its own test;
					// here the log must stay one frame per op.
					cfg.CompactionThreshold = -1
					ops := recoveryOps(t, 8)

					raw := recordWorkload(t, cfg, ops)
					k, p := surviveAndRecover(t, cfg, raw)
					if k != len(ops) {
						t.Fatalf("full log holds %d records, want %d", k, len(ops))
					}
					got := finishDigest(t, p)
					p.Close()

					fresh := minoaner.New(cfg)
					for _, op := range ops {
						applyOp(t, fresh, op)
					}
					if want := finishDigest(t, fresh); got != want {
						t.Fatalf("recovered digest %s, want from-scratch %s", got, want)
					}
				})
			}
		}
	}
}

// TestWALRecoveryContinues proves the recovered pipeline is a live one:
// new mutations after recovery append to the same log, and a second
// recovery sees the concatenated history.
func TestWALRecoveryContinues(t *testing.T) {
	cfg := minoaner.Defaults()
	cfg.Workers = 1
	cfg.CompactionThreshold = -1
	ops := recoveryOps(t, 8)

	dir := t.TempDir()
	p, err := minoaner.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, p, op)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	more := walOp{ingest: []minoaner.Description{
		{KB: "alpha", URI: "http://late/1", Attrs: []minoaner.Attribute{{Predicate: "name", Value: "late arrival"}}},
	}}
	r1, err := minoaner.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyOp(t, r1, more)
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := minoaner.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := finishDigest(t, r2)
	r2.Close()

	fresh := minoaner.New(cfg)
	for _, op := range append(append([]walOp(nil), ops...), more) {
		applyOp(t, fresh, op)
	}
	if want := finishDigest(t, fresh); got != want {
		t.Fatalf("recover→mutate→recover digest %s, want %s", got, want)
	}
}

// TestWALCheckpointOnCompaction drives eviction traffic over the
// compaction threshold: the epoch must rotate the log down to a
// checkpoint (bounding its growth), and recovery through the
// checkpoint — corpus restore plus the records appended after it —
// must still equal the from-scratch session. The TTL variant also
// keeps ingesting after recovery, proving the checkpoint's age vector
// re-bases the sliding window correctly: expiry after the restart
// matches a pipeline that never restarted.
func TestWALCheckpointOnCompaction(t *testing.T) {
	for _, ttl := range []int{0, 2} {
		t.Run(fmt.Sprintf("ttl=%d", ttl), func(t *testing.T) {
			cfg := minoaner.Defaults()
			cfg.Workers = 1
			cfg.TTL = ttl
			cfg.CompactionThreshold = 0.2
			ops := recoveryOps(t, 8)

			dir := t.TempDir()
			p, err := minoaner.Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				applyOp(t, p, op)
			}
			sess := p.Current()
			if sess.Compactions() == 0 {
				t.Fatal("workload never crossed the compaction threshold — raise the eviction traffic")
			}
			g := sess.Gauges()
			if g.WALCheckpoints == 0 {
				t.Fatalf("compaction did not checkpoint the log: %+v", g)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery reads the checkpoint plus whatever followed it.
			rp, err := minoaner.Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			late := []walOp{
				{ingest: []minoaner.Description{{KB: "alpha", URI: "http://late/1",
					Attrs: []minoaner.Attribute{{Predicate: "name", Value: "late one"}}}}},
				{ingest: []minoaner.Description{{KB: "betaKB", URI: "http://late/2",
					Attrs: []minoaner.Attribute{{Predicate: "name", Value: "late two"}}}}},
			}
			for _, op := range late {
				applyOp(t, rp, op) // advances the TTL clock past the checkpointed ages
			}
			got := finishDigest(t, rp)
			rp.Close()

			fresh := minoaner.New(cfg)
			for _, op := range append(append([]walOp(nil), ops...), late...) {
				applyOp(t, fresh, op)
			}
			if want := finishDigest(t, fresh); got != want {
				t.Fatalf("post-checkpoint recovery digest %s, want %s", got, want)
			}
		})
	}
}
