package minoaner_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	minoaner "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden JSON fixtures")

// The golden fixtures under testdata/golden pin the JSON wire format
// of every public type the HTTP API serves. Renaming a field, dropping
// a tag, or changing an omitempty breaks a fixture — which is the
// point: clients parse these bytes, so a change here is a breaking API
// change and must be deliberate (run with -update and review the
// diff).

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wire format of %s changed:\n--- fixture\n%s--- got\n%s", name, want, buf.Bytes())
	}
}

func TestWireFormatGolden(t *testing.T) {
	refA := minoaner.Ref{KB: "dbp", URI: "http://dbpedia.org/resource/Heraklion"}
	refB := minoaner.Ref{KB: "geo", URI: "http://sws.geonames.org/261745/"}

	checkGolden(t, "ref.json", refA)
	checkGolden(t, "match.json", minoaner.Match{
		A: refA, B: refB, Score: 0.8125, Discovered: true, Rechecked: true,
	})
	// The zero booleans are omitted: a plain match is just a, b, score.
	checkGolden(t, "match_plain.json", minoaner.Match{A: refA, B: refB, Score: 0.5})
	checkGolden(t, "cluster.json", minoaner.Cluster{refA, refB})
	checkGolden(t, "stats.json", minoaner.Stats{
		Descriptions: 7, KBs: 2, BruteForce: 1, Blocks: 5, BlockCandidates: 9,
		PrunedEdges: 6, Comparisons: 4, DiscoveredCmps: 2, Matches: 3,
	})
	checkGolden(t, "result.json", minoaner.Result{
		Matches:  []minoaner.Match{{A: refA, B: refB, Score: 0.75}},
		Clusters: []minoaner.Cluster{{refA, refB}},
		Stats:    minoaner.Stats{Descriptions: 2, KBs: 2, Comparisons: 1, Matches: 1},
	})
	checkGolden(t, "description.json", minoaner.Description{
		KB:    "dbp",
		URI:   "http://dbpedia.org/resource/Heraklion",
		Types: []string{"http://dbpedia.org/ontology/City"},
		Attrs: []minoaner.Attribute{
			{Predicate: "http://xmlns.com/foaf/0.1/name", Value: "Heraklion"},
		},
		Links: []string{"http://dbpedia.org/resource/Crete"},
	})
	// The sparse description drops its empty evidence lists entirely.
	checkGolden(t, "description_sparse.json", minoaner.Description{
		KB: "dbp", URI: "http://dbpedia.org/resource/Heraklion",
	})
	checkGolden(t, "timings.json", minoaner.Timings{
		FrontEnd: 7_000, Ingest: 6_000, Evict: 5_000, Resolve: 40_000,
		Schedule: 10_000, Match: 20_000, Update: 3_000,
	})
}

// TestDescriptionRoundTrip proves the ingest direction of the wire
// format: a Description survives marshal → unmarshal unchanged, so
// what a client POSTs is what the session ingests.
func TestDescriptionRoundTrip(t *testing.T) {
	in := minoaner.Description{
		KB:    "dbp",
		URI:   "http://dbpedia.org/resource/Knossos",
		Types: []string{"http://dbpedia.org/ontology/Place"},
		Attrs: []minoaner.Attribute{{Predicate: "p", Value: "v"}},
		Links: []string{"http://dbpedia.org/resource/Crete"},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out minoaner.Description
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the description:\n in %+v\nout %+v", in, out)
	}
}
