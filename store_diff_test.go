// Store-axis differential suite: the cold store moves bytes, never
// bits. Every configuration of Config.Store — "" (all in RAM), "mem"
// (the in-memory reference store), "disk" (paged segment files) — must
// produce byte-identical resolution digests under the same workload,
// across engines, TTL windows, compaction epochs, and WAL recovery.
// The disk-store crash sweep extends the WAL recovery suite (S4): a
// SIGKILL at any WAL byte offset leaves whatever segment bytes were in
// flight, and recovery must reset the store and rebuild it from the
// log's durable prefix alone.
package minoaner_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	minoaner "repro"
)

// withStore returns cfg routed through the given store mode, minting a
// fresh segment directory for "disk".
func withStore(t *testing.T, cfg minoaner.Config, mode string) minoaner.Config {
	t.Helper()
	cfg.Store = mode
	cfg.StoreDir = ""
	if mode == "disk" {
		cfg.StoreDir = t.TempDir()
	}
	return cfg
}

// runOpsDigest applies the scripted workload to a fresh (non-logged)
// pipeline under cfg and resolves it to the canonical digest.
func runOpsDigest(t *testing.T, cfg minoaner.Config, ops []walOp) string {
	t.Helper()
	p := minoaner.New(cfg)
	defer p.Close()
	for _, op := range ops {
		applyOp(t, p, op)
	}
	return finishDigest(t, p)
}

// TestStoreAxisDifferential is the tentpole's correctness proof: the
// standard ingest/evict workload, swept across engines and the
// TTL/compaction scenarios, digests identically whether the cold
// structures live in RAM, behind the mem store, or behind disk
// segments. The compaction scenario drives a full epoch through the
// store — survivor re-encode under the next epoch, old-epoch drop,
// segment rewrite, index flush, graph respill — and still must not
// move a bit.
func TestStoreAxisDifferential(t *testing.T) {
	engines := []struct {
		name    string
		workers int
		mr      bool
	}{
		{"sequential", 1, false},
		{"shared", 4, false},
		{"mapreduce", 4, true},
	}
	scenarios := []struct {
		name string
		ttl  int
		thr  float64
	}{
		{"plain", 0, -1},
		{"ttl", 2, -1},
		{"ttl+compaction", 2, 0.2},
	}
	for _, eng := range engines {
		for _, sc := range scenarios {
			t.Run(eng.name+"/"+sc.name, func(t *testing.T) {
				cfg := minoaner.Defaults()
				cfg.Workers = eng.workers
				cfg.MapReduce = eng.mr
				cfg.TTL = sc.ttl
				cfg.CompactionThreshold = sc.thr
				ops := recoveryOps(t, 8)

				want := runOpsDigest(t, withStore(t, cfg, ""), ops)
				if want == "empty" {
					t.Fatal("workload resolves to nothing — the axis would prove nothing")
				}
				for _, mode := range []string{"mem", "disk"} {
					// Tiny caches force real paging traffic: most reads
					// must miss the LRU and decode from the store.
					scfg := withStore(t, cfg, mode)
					scfg.DescCache = 4
					scfg.PostingCache = 8
					if got := runOpsDigest(t, scfg, ops); got != want {
						t.Errorf("store=%s digest %s, want the storeless %s", mode, got, want)
					}
				}
			})
		}
	}
}

// TestStoreAxisWALRecovery crosses the store axis with full-log
// recovery: a workload recorded under each store mode reopens —
// resetting and rebuilding the store through replay — to the digest of
// a storeless pipeline that never restarted.
func TestStoreAxisWALRecovery(t *testing.T) {
	cfg := minoaner.Defaults()
	cfg.Workers = 1
	cfg.TTL = 2
	cfg.CompactionThreshold = 0.2 // recovery crosses a checkpointed epoch too
	ops := recoveryOps(t, 8)
	want := runOpsDigest(t, cfg, ops)

	for _, mode := range []string{"mem", "disk"} {
		t.Run(mode, func(t *testing.T) {
			scfg := withStore(t, cfg, mode)
			dir := t.TempDir()
			p, err := minoaner.Open(dir, scfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				applyOp(t, p, op)
			}
			if p.Current().Compactions() == 0 {
				t.Fatal("workload never compacted — the epoch path went unexercised")
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			rp, err := minoaner.Open(dir, scfg)
			if err != nil {
				t.Fatal(err)
			}
			got := finishDigest(t, rp)
			if err := rp.Close(); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("recovered store=%s digest %s, want %s", mode, got, want)
			}
		})
	}
}

// TestWALRecoveryDiskStoreSweep is the S4 crash sweep: the recorded
// log is cut at byte offsets — the state a SIGKILL mid-segment-write
// leaves, since the store may have run arbitrarily far ahead of the
// log's durable prefix — and each recovery, over a store directory
// seeded with a torn segment from the doomed process, must digest to
// the from-scratch session over the surviving records. The store is
// derived state: recovery resets it, so no segment byte ever
// influences the outcome.
func TestWALRecoveryDiskStoreSweep(t *testing.T) {
	cfg := minoaner.Defaults()
	cfg.Workers = 1
	cfg.CompactionThreshold = -1 // one frame per op: cuts map to op prefixes
	ops := recoveryOps(t, 8)

	wcfg := withStore(t, cfg, "disk")
	raw := recordWorkload(t, wcfg, ops)
	// The oracle runs storeless: TestStoreAxisDifferential established
	// digests are store-invariant, so one prefix table serves both.
	expect := expectedDigests(t, cfg, ops)

	stride := 41
	if testing.Short() || raceEnabled {
		stride = 241
	}
	t.Logf("sweeping %d byte offsets (stride %d)", len(raw)+1, stride)
	for cut := 0; cut <= len(raw); cut += stride {
		rcfg := withStore(t, cfg, "disk")
		garbage := filepath.Join(rcfg.StoreDir, "seg-000000.dat")
		if err := os.WriteFile(garbage, []byte("torn mid-write segment"), 0o644); err != nil {
			t.Fatal(err)
		}
		k, p := surviveAndRecover(t, rcfg, raw[:cut])
		got := finishDigest(t, p)
		p.Close()
		if want := expect(k); got != want {
			t.Fatalf("disk-store cut at byte %d (%d records survive): digest %s, want %s",
				cut, k, got, want)
		}
	}
}

// TestStoreGauges checks the operator surface: a disk-backed session
// reports segment bytes with a resident footprint well below them,
// live keys, and cache traffic; the mem store reports Resident ==
// Bytes. Storeless sessions keep all five gauges at zero (and out of
// the /status JSON).
func TestStoreGauges(t *testing.T) {
	base := minoaner.Defaults()
	base.Workers = 1
	base.Store = "" // pin storeless: CI's MINOANER_STORE leg must not leak in
	ops := recoveryOps(t, 12)

	session := func(cfg minoaner.Config) *minoaner.Session {
		p := minoaner.New(cfg)
		t.Cleanup(func() { p.Close() })
		for _, op := range ops {
			applyOp(t, p, op)
		}
		return p.Current()
	}

	if g := session(base).Gauges(); g.StoreBytes != 0 || g.StoreResidentBytes != 0 || g.StoreKeys != 0 ||
		g.StoreCacheHits != 0 || g.StoreCacheMisses != 0 {
		t.Fatalf("storeless session reports store gauges: %+v", g)
	}

	mcfg := withStore(t, base, "mem")
	if g := session(mcfg).Gauges(); g.StoreBytes == 0 || g.StoreResidentBytes != g.StoreBytes || g.StoreKeys == 0 {
		t.Fatalf("mem store gauges: %+v", g)
	}

	dcfg := withStore(t, base, "disk")
	dcfg.DescCache = 4
	dcfg.PostingCache = 8
	g := session(dcfg).Gauges()
	if g.StoreBytes == 0 || g.StoreKeys == 0 {
		t.Fatalf("disk store gauges empty: %+v", g)
	}
	if g.StoreResidentBytes*2 > g.StoreBytes {
		t.Fatalf("disk store resident %d not well below stored %d", g.StoreResidentBytes, g.StoreBytes)
	}
	if g.StoreCacheHits+g.StoreCacheMisses == 0 {
		t.Fatalf("no cache traffic recorded: %+v", g)
	}
}

// TestStoreConfigErrors pins the constructor-time validation: "disk"
// without a directory and unknown modes fail on the first mutation (or
// at Open) instead of silently running storeless.
func TestStoreConfigErrors(t *testing.T) {
	d := []minoaner.Description{{KB: "a", URI: "http://x/1",
		Attrs: []minoaner.Attribute{{Predicate: "name", Value: "one"}}}}

	cfg := minoaner.Defaults()
	cfg.Store = "disk"
	if err := minoaner.New(cfg).Add(d); err == nil {
		t.Fatal("disk store without StoreDir accepted")
	}
	if _, err := minoaner.Open(t.TempDir(), cfg); err == nil {
		t.Fatal("Open with disk store and no StoreDir accepted")
	}

	cfg = minoaner.Defaults()
	cfg.Store = "bogus"
	err := minoaner.New(cfg).Add(d)
	if err == nil {
		t.Fatal("unknown store mode accepted")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown-mode error does not name the mode: %v", err)
	}
}
