// Quickstart: resolve two tiny RDF knowledge bases with the default
// pipeline and print the matches it finds, in the order it finds them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	minoaner "repro"
)

// Two descriptions of the same cities, published by different
// authorities with different vocabularies and URI schemes — the
// clean–clean ER setting of the Web of Data.
const cityKB = `
<http://cities.example/Paris> <http://cities.example/name> "Paris" .
<http://cities.example/Paris> <http://cities.example/motto> "fluctuat nec mergitur" .
<http://cities.example/Paris> <http://cities.example/country> <http://cities.example/France> .
<http://cities.example/France> <http://cities.example/name> "France" .
<http://cities.example/Springfield> <http://cities.example/name> "Springfield" .
`

const geoKB = `
<http://geo.example/2988507> <http://geo.example/label> "Paris fluctuat" .
<http://geo.example/2988507> <http://geo.example/locatedIn> <http://geo.example/3017382> .
<http://geo.example/3017382> <http://geo.example/label> "France" .
<http://geo.example/4250542> <http://geo.example/label> "Springfield Illinois" .
`

func main() {
	p := minoaner.New(minoaner.Defaults())
	if err := p.LoadKB("cities", strings.NewReader(cityKB)); err != nil {
		log.Fatal(err)
	}
	if err := p.LoadKB("geo", strings.NewReader(geoKB)); err != nil {
		log.Fatal(err)
	}

	res, err := p.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loaded %d descriptions from %d KBs\n", res.Stats.Descriptions, res.Stats.KBs)
	fmt.Printf("blocking kept %d candidate pairs of %d brute-force comparisons\n",
		res.Stats.BlockCandidates, res.Stats.BruteForce)
	fmt.Printf("meta-blocking retained %d comparisons; %d executed\n\n",
		res.Stats.PrunedEdges, res.Stats.Comparisons)

	for i, m := range res.Matches {
		fmt.Printf("%d. %s  ==  %s   (score %.2f)\n", i+1, m.A.URI, m.B.URI, m.Score)
	}

	fmt.Println("\nowl:sameAs output:")
	fmt.Print(res.SameAs())
}
