// Streaming: resolve a corpus that arrives in batches. The session
// starts on the first slice of the data and every later batch is
// folded in with Session.Ingest — the blocking graph is updated in its
// affected neighborhood, never rebuilt — with per-batch match counts
// printed as answers accumulate. At the end, the streamed session is
// compared against a from-scratch run over the whole corpus: when no
// budget is spent before the last batch the two are bit-identical, and
// in the pay-as-you-go mode used here they reach the same corpus
// quality.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	minoaner "repro"
	"repro/internal/datagen"
)

func main() {
	// A synthetic two-KB world with links stands in for a live feed.
	w, err := datagen.Generate(datagen.Config{
		Seed:        7,
		NumEntities: 300,
		KBs: []datagen.KBConfig{
			{Name: "central", Coverage: 1, Profile: datagen.Center()},
			{Name: "feed", Coverage: 1, Profile: datagen.Center()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The stream: descriptions interleaved across KBs, as a crawl
	// would deliver them.
	var stream []minoaner.Description
	perKB := make(map[string][]int)
	var kbs []string
	for id := 0; id < w.Collection.Len(); id++ {
		name := w.Collection.Desc(id).KB
		if len(perKB[name]) == 0 {
			kbs = append(kbs, name)
		}
		perKB[name] = append(perKB[name], id)
	}
	for i := 0; len(stream) < w.Collection.Len(); i++ {
		for _, name := range kbs {
			if ids := perKB[name]; i < len(ids) {
				d := w.Collection.Desc(ids[i])
				stream = append(stream, minoaner.Description{
					KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
				})
			}
		}
	}

	const batches = 5
	seed := len(stream) / batches

	p := minoaner.New(minoaner.Defaults())
	if err := p.Add(stream[:seed]); err != nil {
		log.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Resume(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch 1/%d: %4d descriptions in, %3d matches, %4d comparisons spent\n",
		batches, res.Stats.Descriptions, res.Stats.Matches, res.Stats.Comparisons)

	for b := 1; b < batches; b++ {
		lo, hi := b*len(stream)/batches, (b+1)*len(stream)/batches
		if err := s.Ingest(stream[lo:hi]); err != nil {
			log.Fatal(err)
		}
		if res, err = s.Resume(0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d/%d: %4d descriptions in, %3d matches, %4d comparisons spent\n",
			b+1, batches, res.Stats.Descriptions, res.Stats.Matches, res.Stats.Comparisons)
	}

	// The from-scratch reference over the complete corpus.
	p2 := minoaner.New(minoaner.Defaults())
	if err := p2.Add(stream); err != nil {
		log.Fatal(err)
	}
	whole, err := p2.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed session: %d matches in %d clusters (%d comparisons)\n",
		res.Stats.Matches, len(res.Clusters), res.Stats.Comparisons)
	fmt.Printf("from scratch:     %d matches in %d clusters (%d comparisons)\n",
		whole.Stats.Matches, len(whole.Clusters), whole.Stats.Comparisons)

	// The evict leg: the first batch goes stale and leaves the live
	// session — the blocking graph shrinks along the departed blocks,
	// matches touching the departed descriptions are retracted, and
	// matches among the survivors stay resolved. A from-scratch run
	// over a corpus that never held the first batch lands on the same
	// resolution.
	var gone []minoaner.Ref
	for _, d := range stream[:seed] {
		gone = append(gone, minoaner.Ref{KB: d.KB, URI: d.URI})
	}
	if err := s.Evict(gone); err != nil {
		log.Fatal(err)
	}
	if res, err = s.Resume(0); err != nil {
		log.Fatal(err)
	}
	p3 := minoaner.New(minoaner.Defaults())
	if err := p3.Add(stream[seed:]); err != nil {
		log.Fatal(err)
	}
	surv, err := p3.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter evicting batch 1 (%d descriptions):\n", len(gone))
	fmt.Printf("evicted session:  %4d descriptions in, %3d matches in %d clusters\n",
		res.Stats.Descriptions, res.Stats.Matches, len(res.Clusters))
	fmt.Printf("never-held-them:  %4d descriptions in, %3d matches in %d clusters\n",
		surv.Stats.Descriptions, surv.Stats.Matches, len(surv.Clusters))
	fmt.Println("\n(ingest or evict everything before the first Resume and the runs" +
		"\n are bit-identical — traces included; see the differential suites.)")
}
