// moviekb shows neighbor evidence in action on a hand-written example:
// two film KBs describe the same movies and directors, but one movie
// pair shares almost no tokens ("somehow similar"). Value similarity
// alone cannot match it; once its directors are resolved, the update
// phase carries it across the threshold.
//
//	go run ./examples/moviekb
package main

import (
	"fmt"
	"log"

	minoaner "repro"
)

func main() {
	run(minoaner.Defaults(), "with neighbor evidence (full Minoan ER)")

	ablated := minoaner.Defaults()
	// Defaults().Match is normalized, so a literal zero sticks:
	// value-only matching, no neighbor evidence.
	ablated.Match.NeighborWeight = 0
	run(ablated, "ablation: neighbor evidence off")
}

func run(cfg minoaner.Config, title string) {
	fmt.Printf("=== %s ===\n", title)
	p := minoaner.New(cfg)

	// KB "imdb": films linked to their directors.
	add := func(kb, uri string, attrs map[string]string, links ...string) {
		if err := p.AddDescription(kb, uri, attrs, links); err != nil {
			log.Fatal(err)
		}
	}
	add("imdb", "http://imdb.example/nm0634240", map[string]string{
		"name": "Christopher Nolan", "born": "London 1970",
	})
	add("imdb", "http://imdb.example/tt1375666", map[string]string{
		"title": "Inception", "tagline": "dream heist thriller",
	}, "http://imdb.example/nm0634240")
	// The "somehow similar" case: a foreign-market title sharing only
	// two weak tokens ("2014", "epic") with its counterpart below —
	// not enough for value similarity alone; the director link is what
	// carries it.
	add("imdb", "http://imdb.example/tt0816692", map[string]string{
		"title": "Yildizlararasi uzay epic", "year": "2014",
	}, "http://imdb.example/nm0634240")

	// KB "wiki": same world, different vocabulary and naming.
	add("wiki", "http://wiki.example/Christopher_Nolan", map[string]string{
		"label": "Christopher Nolan", "birthplace": "London",
	})
	add("wiki", "http://wiki.example/Inception_film", map[string]string{
		"label": "Inception", "genre": "heist dream",
	}, "http://wiki.example/Christopher_Nolan")
	add("wiki", "http://wiki.example/Interstellar", map[string]string{
		"label": "Interstellar", "released": "2014", "style": "epic",
	}, "http://wiki.example/Christopher_Nolan")

	res, err := p.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resolution order (note the structure-assisted match last):")
	for i, m := range res.Matches {
		how := "value similarity"
		switch {
		case m.Discovered:
			how = "discovered by the update phase"
		case m.Rechecked:
			how = "rescued by neighbor evidence"
		}
		fmt.Printf("%d. %-35s == %-40s score %.2f (%s)\n",
			i+1, m.A.URI, m.B.URI, m.Score, how)
	}
	fmt.Printf("(%d of 3 true pairs found)\n\n", len(res.Matches))
}
