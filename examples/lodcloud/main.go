// lodcloud demonstrates pay-as-you-go resolution over a synthetic LOD
// cloud: two densely-populated center KBs plus two sparse periphery
// KBs. It runs the progressive resolver at increasing budgets and
// prints the recall each budget buys — the "higher benefit early"
// claim of the paper — against a random-order baseline.
//
//	go run ./examples/lodcloud
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

func main() {
	world, err := datagen.Generate(datagen.LODCloud(7, 600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic LOD cloud: %s\n", world.Collection.Stats())
	fmt.Printf("ground truth: %d cross-KB matching pairs\n\n",
		world.Truth.CrossKBMatchingPairs(world.Collection))

	col := blocking.TokenBlocking(world.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	graph := metablocking.Build(col, metablocking.ECBS)
	edges := graph.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	matcher := match.NewMatcher(world.Collection, match.DefaultOptions())
	total := world.Truth.CrossKBMatchingPairs(world.Collection)

	recallOf := func(res *core.Result) float64 {
		q := eval.EvaluateMatches(world.Collection, world.Truth, res.MatchedPairs(matcher))
		return q.Recall
	}

	fmt.Printf("%-10s  %-14s  %-14s\n", "budget", "minoan recall", "random recall")
	for _, frac := range []int{20, 10, 4, 2, 1} {
		budget := len(edges) / frac
		minoan := core.NewResolver(matcher, edges, core.Config{Budget: budget}).Run()
		random := baseline.Execute(matcher,
			baseline.RandomOrder(col.DistinctPairs(), 99), false, budget)
		fmt.Printf("%-10d  %-14.3f  %-14.3f\n", budget, recallOf(minoan), recallOf(random))
	}

	full := core.NewResolver(matcher, edges, core.Config{}).Run()
	fmt.Printf("\nfull run: %d comparisons (%d discovered by the update phase), recall %.3f\n",
		full.Comparisons, full.Discovered, recallOf(full))
	_ = total
}
