// parallel drives the full pipeline — token blocking, block cleaning,
// graph construction, pruning, and progressive matching — through
// every parallel engine over an increasing worker count. The
// front-end sweeps the engine layer (internal/pipeline): the
// sequential reference, the shared-memory parallel engine, and the
// in-process MapReduce simulation. The matching sweep then drives the
// speculative-score/serial-commit engine (internal/core) over the
// pruned comparisons. Both sweeps print wall clocks and verify the
// parallel property end to end: every engine and every worker count
// produces the identical pruned blocking graph and a bit-identical
// progressive trace — what makes both the Hadoop realization of [4]
// and the multicore realization safe substitutes for the sequential
// reference.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/pipeline"
	"repro/internal/tokenize"
)

func main() {
	world, err := datagen.Generate(datagen.TwoKBs(3, 800, datagen.Center(), datagen.Center()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", world.Collection.Stats())

	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}

	// Warm the shared token cache once, outside any timed run:
	// whichever engine ran first would otherwise pay tokenization for
	// everyone after it, skewing the sweep. The timings below compare
	// the engines' index building, cleaning, graph, and pruning work.
	world.Collection.WarmTokens(opt.Tokenize, 4)

	var refSet bool
	var refBlocks, refEdges int
	var refWeight float64
	check := func(engine string, workers int, fe *pipeline.FrontEnd, wall time.Duration) {
		sum := 0.0
		for _, e := range fe.Edges {
			sum += e.Weight
		}
		fmt.Printf("%-12s  %-8d  %-10s  %-8d  %-8d  %-10.1f\n",
			engine, workers, wall.Round(time.Millisecond),
			fe.Blocks.NumBlocks(), len(fe.Edges), sum)
		if !refSet {
			refSet = true
			refBlocks, refEdges, refWeight = fe.Blocks.NumBlocks(), len(fe.Edges), sum
			return
		}
		if fe.Blocks.NumBlocks() != refBlocks || len(fe.Edges) != refEdges || abs(sum-refWeight) > 1e-6 {
			log.Fatalf("%s with %d workers changed the result: %d blocks, %d edges (Σ %.3f) vs %d, %d (Σ %.3f)",
				engine, workers, fe.Blocks.NumBlocks(), len(fe.Edges), sum,
				refBlocks, refEdges, refWeight)
		}
	}

	fmt.Printf("%-12s  %-8s  %-10s  %-8s  %-8s  %-10s\n",
		"engine", "workers", "wall", "blocks", "edges", "Σweight")

	run := func(eng pipeline.Engine, workers int) *pipeline.FrontEnd {
		start := time.Now()
		fe, err := pipeline.Run(eng, world.Collection, opt)
		if err != nil {
			log.Fatal(err)
		}
		check(eng.Name(), workers, fe, time.Since(start))
		return fe
	}

	// The sequential reference first: the oracle the parallel engines
	// must reproduce bit for bit. Its pruned graph also feeds the
	// matching sweep below.
	fe := run(pipeline.Sequential{}, 1)

	// Shared-memory engine: sharded blocking and cleaning feed the
	// concurrent graph builder and pruner — no serialization, no
	// shuffle.
	for _, workers := range []int{2, 4, 8} {
		run(pipeline.Shared{Workers: workers}, workers)
	}

	// MapReduce simulation: the same dataflow a Hadoop cluster would
	// run, including blocking as a map/reduce pass.
	for _, workers := range []int{2, 4, 8} {
		run(pipeline.MapReduce{Workers: workers}, workers)
	}

	fmt.Println("\nevery engine, every worker count: identical pruned graph")

	// Matching stage: the speculative-score/serial-commit engine over
	// the pruned comparisons of the sequential reference run. Workers
	// precompute TF-IDF cosines in pipelined waves; one committer
	// replays the exact sequential schedule, so the trace must match
	// the sequential resolver step for step, in every field.
	matcher := match.NewMatcher(world.Collection, match.DefaultOptions())

	fmt.Printf("\n%-12s  %-8s  %-10s  %-12s  %-8s  %-10s\n",
		"matching", "workers", "wall", "comparisons", "matches", "Σgain")
	var ref *core.Result
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		res := core.NewResolver(matcher, fe.Edges, core.Config{Workers: workers}).Run()
		wall := time.Since(start)
		fmt.Printf("%-12s  %-8d  %-10s  %-12d  %-8d  %-10.1f\n",
			"speculative", workers, wall.Round(time.Millisecond),
			res.Comparisons, res.Matches, res.TotalGain)
		if ref == nil {
			ref = res // workers=1 is the sequential reference loop
			continue
		}
		if len(res.Trace) != len(ref.Trace) {
			log.Fatalf("%d workers changed the trace length: %d vs %d", workers, len(res.Trace), len(ref.Trace))
		}
		for i := range ref.Trace {
			if res.Trace[i] != ref.Trace[i] {
				log.Fatalf("%d workers changed step %d: %+v vs %+v", workers, i, res.Trace[i], ref.Trace[i])
			}
		}
	}

	fmt.Println("\nevery worker count: bit-identical progressive trace")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
