// parallel runs blocking and meta-blocking on the in-process MapReduce
// engine with an increasing worker count, prints the wall-clock sweep,
// and verifies that every worker count produces the identical blocking
// graph — the property that makes the Hadoop realization of [4] safe.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/tokenize"
)

func main() {
	world, err := datagen.Generate(datagen.TwoKBs(3, 800, datagen.Center(), datagen.Center()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", world.Collection.Stats())

	var refEdges int
	var refWeight float64
	fmt.Printf("%-8s  %-10s  %-8s  %-10s\n", "workers", "wall", "edges", "Σweight")
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := mapreduce.Config{Workers: workers}
		start := time.Now()
		col, err := parblock.TokenBlocking(world.Collection, tokenize.Default(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		graph, err := parblock.Graph(col, metablocking.ECBS, cfg)
		if err != nil {
			log.Fatal(err)
		}
		kept, err := parblock.PruneNodeCentric(graph, metablocking.WNP,
			metablocking.PruneOptions{}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)

		sum := 0.0
		for _, e := range kept {
			sum += e.Weight
		}
		fmt.Printf("%-8d  %-10s  %-8d  %-10.1f\n", workers, wall.Round(time.Millisecond), len(kept), sum)

		if refEdges == 0 {
			refEdges, refWeight = len(kept), sum
			continue
		}
		if len(kept) != refEdges || abs(sum-refWeight) > 1e-6 {
			log.Fatalf("worker count %d changed the result: %d edges (Σ %.3f) vs %d (Σ %.3f)",
				workers, len(kept), sum, refEdges, refWeight)
		}
	}
	fmt.Println("\nall worker counts produced the identical pruned graph")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
