// parallel drives the full pipeline front-end — token blocking, block
// cleaning, graph construction, pruning — through every engine of the
// unified engine layer (internal/pipeline): the sequential reference,
// the shared-memory parallel engine, and the in-process MapReduce
// simulation, each over an increasing worker count. It prints the
// wall-clock sweep and verifies that every engine and every worker
// count produces the identical pruned blocking graph: the property
// that makes both the Hadoop realization of [4] and the multicore
// realization safe to substitute for the sequential reference.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/metablocking"
	"repro/internal/pipeline"
	"repro/internal/tokenize"
)

func main() {
	world, err := datagen.Generate(datagen.TwoKBs(3, 800, datagen.Center(), datagen.Center()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", world.Collection.Stats())

	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}

	// Warm the shared token cache once, outside any timed run:
	// whichever engine ran first would otherwise pay tokenization for
	// everyone after it, skewing the sweep. The timings below compare
	// the engines' index building, cleaning, graph, and pruning work.
	world.Collection.WarmTokens(opt.Tokenize, 4)

	var refSet bool
	var refBlocks, refEdges int
	var refWeight float64
	check := func(engine string, workers int, fe *pipeline.FrontEnd, wall time.Duration) {
		sum := 0.0
		for _, e := range fe.Edges {
			sum += e.Weight
		}
		fmt.Printf("%-12s  %-8d  %-10s  %-8d  %-8d  %-10.1f\n",
			engine, workers, wall.Round(time.Millisecond),
			fe.Blocks.NumBlocks(), len(fe.Edges), sum)
		if !refSet {
			refSet = true
			refBlocks, refEdges, refWeight = fe.Blocks.NumBlocks(), len(fe.Edges), sum
			return
		}
		if fe.Blocks.NumBlocks() != refBlocks || len(fe.Edges) != refEdges || abs(sum-refWeight) > 1e-6 {
			log.Fatalf("%s with %d workers changed the result: %d blocks, %d edges (Σ %.3f) vs %d, %d (Σ %.3f)",
				engine, workers, fe.Blocks.NumBlocks(), len(fe.Edges), sum,
				refBlocks, refEdges, refWeight)
		}
	}

	fmt.Printf("%-12s  %-8s  %-10s  %-8s  %-8s  %-10s\n",
		"engine", "workers", "wall", "blocks", "edges", "Σweight")

	run := func(eng pipeline.Engine, workers int) {
		start := time.Now()
		fe, err := pipeline.Run(eng, world.Collection, opt)
		if err != nil {
			log.Fatal(err)
		}
		check(eng.Name(), workers, fe, time.Since(start))
	}

	// The sequential reference first: the oracle the parallel engines
	// must reproduce bit for bit.
	run(pipeline.Sequential{}, 1)

	// Shared-memory engine: sharded blocking and cleaning feed the
	// concurrent graph builder and pruner — no serialization, no
	// shuffle.
	for _, workers := range []int{2, 4, 8} {
		run(pipeline.Shared{Workers: workers}, workers)
	}

	// MapReduce simulation: the same dataflow a Hadoop cluster would
	// run, including blocking as a map/reduce pass.
	for _, workers := range []int{2, 4, 8} {
		run(pipeline.MapReduce{Workers: workers}, workers)
	}

	fmt.Println("\nevery engine, every worker count: identical pruned graph")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
