// parallel runs meta-blocking on both parallel engines — the
// shared-memory engine (internal/parmeta) and the in-process MapReduce
// simulation (internal/parblock) — with an increasing worker count,
// prints the wall-clock sweep, and verifies that every engine and
// every worker count produces the identical pruned blocking graph: the
// property that makes both the Hadoop realization of [4] and the
// multicore realization safe to substitute for the sequential
// reference.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/parmeta"
	"repro/internal/tokenize"
)

func main() {
	world, err := datagen.Generate(datagen.TwoKBs(3, 800, datagen.Center(), datagen.Center()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", world.Collection.Stats())

	var refSet bool
	var refEdges int
	var refWeight float64
	check := func(engine string, workers int, kept []metablocking.Edge, wall time.Duration) {
		sum := 0.0
		for _, e := range kept {
			sum += e.Weight
		}
		fmt.Printf("%-14s  %-8d  %-10s  %-8d  %-10.1f\n",
			engine, workers, wall.Round(time.Millisecond), len(kept), sum)
		if !refSet {
			refSet, refEdges, refWeight = true, len(kept), sum
			return
		}
		if len(kept) != refEdges || abs(sum-refWeight) > 1e-6 {
			log.Fatalf("%s with %d workers changed the result: %d edges (Σ %.3f) vs %d (Σ %.3f)",
				engine, workers, len(kept), sum, refEdges, refWeight)
		}
	}

	fmt.Printf("%-14s  %-8s  %-10s  %-8s  %-10s\n", "engine", "workers", "wall", "edges", "Σweight")

	// Shared-memory engine: sequential blocking feeds the concurrent
	// graph builder and pruner directly — no serialization, no shuffle.
	col := blocking.TokenBlocking(world.Collection, tokenize.Default())
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		graph := parmeta.Build(col, metablocking.ECBS, workers)
		kept := parmeta.Prune(graph, metablocking.WNP, metablocking.PruneOptions{}, workers)
		check("shared-memory", workers, kept, time.Since(start))
	}

	// MapReduce simulation: the same dataflow a Hadoop cluster would
	// run, including blocking as a map/reduce pass.
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := mapreduce.Config{Workers: workers}
		start := time.Now()
		mrCol, err := parblock.TokenBlocking(world.Collection, tokenize.Default(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		graph, err := parblock.Graph(mrCol, metablocking.ECBS, cfg)
		if err != nil {
			log.Fatal(err)
		}
		kept, err := parblock.PruneNodeCentric(graph, metablocking.WNP,
			metablocking.PruneOptions{}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		check("mapreduce", workers, kept, time.Since(start))
	}

	fmt.Println("\nboth engines, all worker counts: identical pruned graph")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
