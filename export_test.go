package minoaner

import "repro/internal/mapreduce"

// MRProcRunner exposes the pipeline's shared worker pool to tests —
// the fault-injection hooks (KillNextTask) and the Spawned gauge live
// on the runner, and the differential matrix needs to reach them
// through the public API surface it exercises.
func (p *Pipeline) MRProcRunner() *mapreduce.ProcRunner { return p.mrProc }
