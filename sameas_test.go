package minoaner_test

import (
	"testing"

	minoaner "repro"
	"repro/internal/rdf"
)

// Result.SameAs and the server's /sameas endpoint share one
// serializer, so this round trip — serialize, re-parse with the strict
// N-Triples parser, re-serialize — vouches for both: every emitted
// line is a valid owl:sameAs triple, and the document is a fixed point
// of the parser.
func TestSameAsRoundTrip(t *testing.T) {
	w := hardSessionWorld(t, 67, 80)
	s := loadSession(t, w, minoaner.Defaults())
	res, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("workload produced no matches; round trip needs some")
	}
	doc := res.SameAs()
	triples, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatalf("SameAs output does not re-parse: %v", err)
	}
	if len(triples) != len(res.Matches) {
		t.Fatalf("%d triples for %d matches", len(triples), len(res.Matches))
	}
	for i, tr := range triples {
		if tr.Predicate.Value != rdf.OWLSameAs {
			t.Fatalf("triple %d predicate %s, want owl:sameAs", i, tr.Predicate.Value)
		}
		if tr.Subject.Value != res.Matches[i].A.URI || tr.Object.Value != res.Matches[i].B.URI {
			t.Fatalf("triple %d is %s ≡ %s, match %d is %s ≡ %s",
				i, tr.Subject.Value, tr.Object.Value, i, res.Matches[i].A.URI, res.Matches[i].B.URI)
		}
	}
	back, err := rdf.WriteString(triples)
	if err != nil {
		t.Fatal(err)
	}
	if back != doc {
		t.Fatal("SameAs document is not a fixed point of parse → write")
	}

	// The session snapshot serves the same bytes.
	if sn := s.Snapshot(); sn.SameAs() != doc {
		t.Fatal("Snapshot.SameAs differs from Result.SameAs")
	}
}
