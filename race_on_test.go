//go:build race

package minoaner_test

// raceEnabled strides the crash-fault sweeps down when the race
// detector multiplies every recovery by ~10×: the race job still
// exercises every code path and every frame phase, the exhaustive
// every-byte sweep stays with the regular test job.
const raceEnabled = true
