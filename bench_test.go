// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (DESIGN.md §3). Each BenchmarkXx runs the corresponding
// experiment at laptop scale; run
//
//	go test -bench=. -benchmem
//
// and compare the reported rows with EXPERIMENTS.md. Component
// micro-benchmarks for the hot paths follow the experiment benches.
package minoaner_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	minoaner "repro"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/parmeta"
	"repro/internal/pipeline"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/tokenize"
	"repro/internal/wal"
)

const benchSeed = 2016 // EDBT year; fixed so every run regenerates identical tables

// report runs an experiment once, prints its table under -v, and
// exposes rows/op-style metrics for regressions.
func report(b *testing.B, run func() *experiments.Table) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = run()
	}
	b.StopTimer()
	var sb strings.Builder
	tab.Fprint(&sb)
	b.Log("\n" + sb.String())
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

func BenchmarkF1Pipeline(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F1Pipeline(benchSeed, 300) })
}

func BenchmarkT1Blocking(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T1Blocking(benchSeed, []int{200, 400}) })
}

func BenchmarkT2BlockCleaning(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T2BlockCleaning(benchSeed, 400) })
}

func BenchmarkT3MetaBlocking(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T3MetaBlocking(benchSeed, 300) })
}

func BenchmarkF2Progressive(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F2Progressive(benchSeed, 300) })
}

func BenchmarkF3Benefits(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F3Benefits(benchSeed, 300) })
}

func BenchmarkT4NeighborEvidence(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T4NeighborEvidence(benchSeed, 300) })
}

func BenchmarkT5Parallel(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.T5Parallel(benchSeed, 400, []int{1, 2, 4, 8})
	})
}

func BenchmarkT7ParallelShared(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.T7ParallelShared(benchSeed, 400, []int{1, 2, 4, 8})
	})
}

func BenchmarkF4Scalability(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.F4Scalability(benchSeed, []int{100, 200, 400, 800})
	})
}

func BenchmarkT6DirtyER(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T6DirtyER(benchSeed, 300) })
}

// --- ablation benches (design choices called out in DESIGN.md) -----

func BenchmarkA1BlockingMethods(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A1BlockingMethods(benchSeed, 300) })
}

func BenchmarkA2NeighborWeight(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A2NeighborWeight(benchSeed, 300) })
}

func BenchmarkA3SchedulerComponents(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A3SchedulerComponents(benchSeed, 300) })
}

func BenchmarkA4SchemeProgressive(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A4SchemeProgressive(benchSeed, 300) })
}

func BenchmarkA5PruningReciprocal(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A5PruningReciprocal(benchSeed, 300) })
}

func BenchmarkA6Clustering(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A6Clustering(benchSeed, 300) })
}

// --- component micro-benchmarks -----------------------------------

func benchWorld(b *testing.B, n int) *datagen.World {
	b.Helper()
	w, err := datagen.Generate(datagen.TwoKBs(benchSeed, n, datagen.Center(), datagen.Center()))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkTokenBlocking(b *testing.B) {
	w := benchWorld(b, 1000)
	opts := tokenize.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocking.TokenBlocking(w.Collection, opts)
	}
}

func BenchmarkMetaBlockingBuild(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metablocking.Build(col, metablocking.ECBS)
	}
}

func BenchmarkPruneWNP(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Prune(metablocking.WNP, opts)
	}
}

// BenchmarkParMetaBuild sweeps the shared-memory builder's worker
// count on one workload; compare ns/op across sub-benchmarks for the
// speedup curve (workers=1 is the sequential reference engine).
func BenchmarkParMetaBuild(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parmeta.Build(col, metablocking.ECBS, workers)
			}
		})
	}
}

// BenchmarkParMetaPrune sweeps the parallel pruner's worker count over
// the node-centric WNP algorithm, the pipeline default.
func BenchmarkParMetaPrune(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := parmeta.Build(col, metablocking.ECBS, 4)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parmeta.Prune(g, metablocking.WNP, opts, workers)
			}
		})
	}
}

// BenchmarkFrontEndBlocking sweeps tokenize + token blocking across
// the engine layer's worker counts (workers=1 is the sequential
// reference engine). Each sub-benchmark gets its own world so no
// engine inherits another's warm token cache; after the first
// iteration the cache is warm, as in a real pipeline run.
func BenchmarkFrontEndBlocking(b *testing.B) {
	opts := tokenize.Default()
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			w := benchWorld(b, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TokenBlocking(w.Collection, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontEndCleaning sweeps block purging + filtering across
// the engine layer's worker counts on one pre-built block collection.
func BenchmarkFrontEndCleaning(b *testing.B) {
	w := benchWorld(b, 1000)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default())
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				purged, err := eng.Purge(col, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Filter(purged, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontEndRun drives the whole front-end — blocking,
// cleaning, graph build, pruning — through each engine, the wall-clock
// the engine refactor targets.
func BenchmarkFrontEndRun(b *testing.B) {
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			w := benchWorld(b, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, w.Collection, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngest is the streaming cost profile: folding a small batch
// into a live front-end state (pipeline.Start + Engine.Ingest) versus
// rebuilding the front-end from scratch over the grown corpus. The
// ingest path re-tokenizes only the batch and updates the blocking
// graph only in the batch's neighborhood, so its ns/op must sit far
// below the rebuild's — the delta-proportionality the incremental
// subsystem exists for. Per-iteration state construction is excluded
// from the timer.
func BenchmarkIngest(b *testing.B) {
	const delta = 10
	w := benchWorld(b, 1000) // two KBs ⇒ ~2000 descriptions
	full := w.Collection
	n := full.Len()
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	for _, workers := range []int{1, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("ingest-batch/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				grown := kb.NewCollection()
				copyInto(grown, 0, n-delta)
				st, err := pipeline.Start(eng, grown, opt)
				if err != nil {
					b.Fatal(err)
				}
				copyInto(grown, n-delta, n)
				b.StartTimer()
				if err := eng.Ingest(st); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if st.LastUpdate.Rebuilt {
					b.Fatal("ingest fell back to a full graph rebuild")
				}
				b.ReportMetric(float64(st.LastUpdate.EdgesTouched), "touched-edges")
				b.ReportMetric(float64(st.Front.Graph.NumEdges()), "total-edges")
				b.ReportMetric(float64(st.LastReprune.VisitedEdges), "reprune-visited")
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("rebuild/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			scratch := kb.NewCollection()
			copyInto(scratch, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, scratch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepruneLocality is the locality proof of the re-pruning
// memo: under a scheme without global normalizers (JS — a delta's
// weight changes stay in the delta's neighborhood) and cleaning
// parameters whose decisions are local (a fixed purge cap instead of
// the histogram-derived automatic one, no global filter re-ranking),
// folding a small batch into a live state re-derives pruning verdicts
// only for the dirty neighborhoods. The benchmark asserts the pass
// never falls back to a full re-prune and that the visited incidences
// stay sub-linear in the graph (under half of what a full node-centric
// pass visits); the reported metrics are the evidence re-pruning
// scales with the touched neighborhoods, not the corpus.
func BenchmarkRepruneLocality(b *testing.B) {
	const delta = 10
	w := benchWorld(b, 1000)
	full := w.Collection
	n := full.Len()
	opt := pipeline.Options{
		Tokenize:          tokenize.Default(),
		PurgeMaxBlockSize: 30,
		Scheme:            metablocking.JS,
		Pruning:           metablocking.WNP,
	}
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	for _, workers := range []int{1, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				grown := kb.NewCollection()
				copyInto(grown, 0, n-delta)
				st, err := pipeline.Start(eng, grown, opt)
				if err != nil {
					b.Fatal(err)
				}
				copyInto(grown, n-delta, n)
				b.StartTimer()
				if err := eng.Ingest(st); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				r := st.LastReprune
				if r.Full {
					b.Fatal("re-pruning fell back to a full pass")
				}
				// A full node-centric pass visits every edge from both
				// endpoints: 2·|E| incidences. Locality means staying
				// well under that; a saturated dirty set would not.
				if 2*r.VisitedEdges >= 2*r.TotalEdges {
					b.Fatalf("re-pruning visited %d incidences of a %d-edge graph — not sub-linear",
						r.VisitedEdges, r.TotalEdges)
				}
				b.ReportMetric(float64(r.DirtyNodes), "dirty-nodes")
				b.ReportMetric(float64(r.TotalNodes), "total-nodes")
				b.ReportMetric(float64(r.VisitedEdges), "reprune-visited")
				b.ReportMetric(float64(r.TotalEdges), "total-edges")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEvict is the deletion cost profile, the mirror of
// BenchmarkIngest: splicing a small batch of departures out of a live
// front-end state (Engine.Evict) versus rebuilding the front-end from
// scratch over the surviving corpus. The evict path touches only the
// postings the departed descriptions carried and re-accumulates only
// the graph neighborhood their blocks span — it must never fall back
// to a full graph rebuild, which the benchmark asserts alongside the
// touched-edges/total-edges ratio.
func BenchmarkEvict(b *testing.B) {
	const delta = 10
	w := benchWorld(b, 1000) // two KBs ⇒ ~2000 descriptions
	full := w.Collection
	n := full.Len()
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	for _, workers := range []int{1, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("evict-batch/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				grown := kb.NewCollection()
				copyInto(grown, 0, n)
				st, err := pipeline.Start(eng, grown, opt)
				if err != nil {
					b.Fatal(err)
				}
				// A spread of departures across both KBs, away from the
				// single-KB boundary.
				for id := 0; id < delta; id++ {
					grown.Evict(3 + id*((n-6)/delta))
				}
				b.StartTimer()
				if err := eng.Evict(st); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if st.LastUpdate.Rebuilt {
					b.Fatal("evict fell back to a full graph rebuild")
				}
				b.ReportMetric(float64(st.LastUpdate.EdgesTouched), "touched-edges")
				b.ReportMetric(float64(st.Front.Graph.NumEdges()), "total-edges")
				b.ReportMetric(float64(st.LastReprune.VisitedEdges), "reprune-visited")
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("rebuild/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			scratch := kb.NewCollection()
			copyInto(scratch, 0, n)
			for id := 0; id < delta; id++ {
				scratch.Evict(3 + id*((n-6)/delta))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, scratch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatching drives the progressive matching stage — the
// schedule → match → update loop over the pruned comparison list —
// sequentially (workers=1) and through the speculative-score/
// serial-commit parallel engine. Every worker count produces a
// bit-identical trace (differentially tested in internal/core); the
// sub-benchmark ratio is the matching-stage speedup. The workload uses
// token-rich descriptions (tens of tokens, like the paper's DBpedia
// and BTC corpora) so value similarity carries its real-world share of
// the cost.
func BenchmarkMatching(b *testing.B) {
	cfg := datagen.Config{
		Seed:        benchSeed,
		NumEntities: 800,
		NameTokens:  12,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.9, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.75, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
		},
		LinksPerEntity: 3,
	}
	w, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewResolver(m, edges, core.Config{Workers: workers}).Run()
			}
		})
	}
}

func BenchmarkMatcherValueSim(b *testing.B) {
	w := benchWorld(b, 400)
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ValueSim(i%w.Collection.Len(), (i*7+1)%w.Collection.Len())
	}
}

func BenchmarkMapReduceWordShuffle(b *testing.B) {
	w := benchWorld(b, 400)
	opts := tokenize.Default()
	cfg := mapreduce.Config{Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parblock.TokenBlocking(context.Background(), w.Collection, opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTriplesDecode(b *testing.B) {
	w := benchWorld(b, 300)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 7 perf artifact --------------------------------------------

type pr7Stage struct {
	Engine      string `json:"engine"`
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"nsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
}

type pr7Update struct {
	Engine         string `json:"engine"`
	Workers        int    `json:"workers"`
	TouchedEdges   int    `json:"touchedEdges"`
	TotalEdges     int    `json:"totalEdges"`
	RepruneVisited int    `json:"repruneVisited"`
	RepruneTotal   int    `json:"repruneTotal"`
	RepruneFull    bool   `json:"repruneFull"`
	Rebuilt        bool   `json:"rebuilt"`
}

type pr7Match struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"nsPerOp"`
	PairsPerSec float64 `json:"pairsPerSec"`
}

// pr7Streaming folds one small batch (arriving or departing) into a
// live front-end state and reads back the update counters — the
// deterministic touched-vs-total evidence that streamed deltas stay in
// their neighborhoods. Mirrors BenchmarkIngest / BenchmarkEvict.
func pr7Streaming(b *testing.B, evict bool, workers int, opt pipeline.Options) pr7Update {
	b.Helper()
	const delta = 10
	w := benchWorld(b, 1000)
	full := w.Collection
	n := full.Len()
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	eng := pipeline.Select(workers, false)
	grown := kb.NewCollection()
	var st *pipeline.State
	var err error
	if evict {
		copyInto(grown, 0, n)
		if st, err = pipeline.Start(eng, grown, opt); err != nil {
			b.Fatal(err)
		}
		for id := 0; id < delta; id++ {
			grown.Evict(3 + id*((n-6)/delta))
		}
		err = eng.Evict(st)
	} else {
		copyInto(grown, 0, n-delta)
		if st, err = pipeline.Start(eng, grown, opt); err != nil {
			b.Fatal(err)
		}
		copyInto(grown, n-delta, n)
		err = eng.Ingest(st)
	}
	if err != nil {
		b.Fatal(err)
	}
	return pr7Update{
		Engine:         eng.Name(),
		Workers:        workers,
		TouchedEdges:   st.LastUpdate.EdgesTouched,
		TotalEdges:     st.Front.Graph.NumEdges(),
		RepruneVisited: st.LastReprune.VisitedEdges,
		RepruneTotal:   st.LastReprune.TotalEdges,
		RepruneFull:    st.LastReprune.Full,
		Rebuilt:        st.LastUpdate.Rebuilt,
	}
}

// pr7Measure times fn over a few iterations and reads per-op ns,
// allocated bytes, and allocation counts from the runtime's monotonic
// counters. testing.Benchmark cannot run inside an executing benchmark
// (it deadlocks on the harness lock), so the artifact measures by
// hand; TotalAlloc/Mallocs deltas are exact regardless of GC timing.
func pr7Measure(iters int, fn func()) (nsPerOp, bytesPerOp, allocsPerOp int64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		int64(after.Mallocs-before.Mallocs) / n
}

var pr7Written bool

// BenchmarkPR7Artifact regenerates BENCH_pr7.json, the perf trajectory
// record for the streaming stage-boundary work: front-end peak
// bytes/allocs per engine, ingest/evict touched-vs-total edge counts,
// locality re-pruning coverage, and matching-stage throughput. The
// bench smoke CI job runs it once per PR and uploads the refreshed
// file as an artifact; regenerate the committed copy locally with
//
//	go test -run='^$' -bench=PR7Artifact -benchtime=1x
//
// Counts (touched edges, re-prune coverage) are deterministic; timings
// vary with hardware and -benchtime and are recorded for trend
// reading, not gating. The hard assertions — no rebuild fallback,
// sub-linear re-prune — live in BenchmarkIngest, BenchmarkEvict, and
// BenchmarkRepruneLocality, which the same smoke run executes.
func BenchmarkPR7Artifact(b *testing.B) {
	if pr7Written { // the harness re-enters with growing b.N; once is enough
		return
	}
	pr7Written = true

	var art struct {
		FrontEnd        []pr7Stage  `json:"frontEnd"`
		Ingest          []pr7Update `json:"ingest"`
		Evict           []pr7Update `json:"evict"`
		RepruneLocality []pr7Update `json:"repruneLocality"`
		Matching        []pr7Match  `json:"matching"`
	}

	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		w := benchWorld(b, 1000)
		pipeline.Run(eng, w.Collection, opt) // warm the token cache, as every sweep does
		ns, bytes, allocs := pr7Measure(3, func() {
			if _, err := pipeline.Run(eng, w.Collection, opt); err != nil {
				b.Fatal(err)
			}
		})
		art.FrontEnd = append(art.FrontEnd, pr7Stage{
			Engine:      eng.Name(),
			Workers:     workers,
			NsPerOp:     ns,
			BytesPerOp:  bytes,
			AllocsPerOp: allocs,
		})
	}

	for _, workers := range []int{1, 4} {
		art.Ingest = append(art.Ingest, pr7Streaming(b, false, workers, opt))
		art.Evict = append(art.Evict, pr7Streaming(b, true, workers, opt))
	}

	// Locality configuration: JS weights and a fixed purge cap keep
	// every cleaning and weighting decision local, so the memoized
	// re-prune stays in the dirty neighborhoods (BenchmarkRepruneLocality
	// asserts it never goes full; here we record the coverage ratio).
	local := pipeline.Options{
		Tokenize:          tokenize.Default(),
		PurgeMaxBlockSize: 30,
		Scheme:            metablocking.JS,
		Pruning:           metablocking.WNP,
	}
	for _, workers := range []int{1, 4} {
		art.RepruneLocality = append(art.RepruneLocality, pr7Streaming(b, false, workers, local))
	}

	mcfg := datagen.Config{
		Seed:        benchSeed,
		NumEntities: 800,
		NameTokens:  12,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.9, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.75, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
		},
		LinksPerEntity: 3,
	}
	w, err := datagen.Generate(mcfg)
	if err != nil {
		b.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	for _, workers := range []int{1, 2, 4} {
		ns, _, _ := pr7Measure(3, func() {
			core.NewResolver(m, edges, core.Config{Workers: workers}).Run()
		})
		art.Matching = append(art.Matching, pr7Match{
			Workers:     workers,
			NsPerOp:     ns,
			PairsPerSec: float64(len(edges)) * 1e9 / float64(ns),
		})
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr7.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_pr7.json")
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	w := benchWorld(b, 300)
	docA, _ := rdf.WriteString(w.Triples("alpha"))
	docB, _ := rdf.WriteString(w.Triples("betaKB"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := minoaner.New(minoaner.Defaults())
		if err := p.LoadKB("alpha", strings.NewReader(docA)); err != nil {
			b.Fatal(err)
		}
		if err := p.LoadKB("betaKB", strings.NewReader(docB)); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Resolve(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 8 WAL benchmarks -------------------------------------------

// walBenchPayload is a realistic ingest-batch payload: ten wire
// descriptions JSON-encoded exactly as Session.Ingest logs them.
func walBenchPayload(b *testing.B) []byte {
	b.Helper()
	batch := streamDescriptions(benchWorld(b, 200))[:10]
	data, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkWALAppend measures the raw log append path per fsync
// policy. SyncWave commits every 64 appends — the server's wave
// cadence — so its row is the durability cost an operator actually
// pays; the amplification metric is log bytes per payload byte (the
// 9-byte frame header over JSON batches).
func BenchmarkWALAppend(b *testing.B) {
	payload := walBenchPayload(b)
	for _, pol := range []wal.Policy{wal.SyncOff, wal.SyncWave, wal.SyncAlways} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			l, recs, err := wal.Open(b.TempDir(), pol)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != 0 {
				b.Fatal("fresh log dir not empty")
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(wal.TypeIngest, payload); err != nil {
					b.Fatal(err)
				}
				if pol == wal.SyncWave && (i+1)%64 == 0 {
					if err := l.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := l.Commit(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := l.Stats()
			b.ReportMetric(float64(st.Bytes)/float64(int64(b.N)*int64(len(payload))), "amplification")
		})
	}
}

// walBenchLog seeds dir with a streamed session's log — half the
// corpus loaded before Start, the rest ingested in batches of ten —
// and returns the description count a replay must recover.
func walBenchLog(b *testing.B, dir string) int {
	b.Helper()
	p, err := minoaner.Open(dir, minoaner.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	all := streamDescriptions(benchWorld(b, 400))
	seed := len(all) / 2
	if err := p.Add(all[:seed]); err != nil {
		b.Fatal(err)
	}
	sess, err := p.Start()
	if err != nil {
		b.Fatal(err)
	}
	for lo := seed; lo < len(all); lo += 10 {
		hi := lo + 10
		if hi > len(all) {
			hi = len(all)
		}
		if err := sess.Ingest(all[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
	return len(all)
}

// BenchmarkWALReplay is recovery cost: Open replays the log through
// the same streaming paths a live session uses (load, Start, then one
// front-end pass per ingest record), so ns/op here is the restart
// latency the log buys instead of a from-source rebuild.
func BenchmarkWALReplay(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "wal")
	n := walBenchLog(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := minoaner.Open(dir, minoaner.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if p.NumDescriptions() != n {
			b.Fatalf("replay recovered %d descriptions, want %d", p.NumDescriptions(), n)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "descs")
}

// BenchmarkSessionIngest measures the public streaming mutation path
// with the log absent, deferred (wave), and eager (always). The PR 8
// acceptance line reads off the first two rows: wal=wave must stay
// within 10% of wal=none (the front-end pass dominates; the append is
// one buffered write per batch and one fsync per wave).
func BenchmarkSessionIngest(b *testing.B) {
	all := streamDescriptions(benchWorld(b, 400))
	seed := len(all) / 2
	run := func(b *testing.B, open func() (*minoaner.Pipeline, error)) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p, err := open()
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Add(all[:seed]); err != nil {
				b.Fatal(err)
			}
			sess, err := p.Start()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for lo := seed; lo < len(all); lo += 10 {
				hi := lo + 10
				if hi > len(all) {
					hi = len(all)
				}
				if err := sess.Ingest(all[lo:hi]); err != nil {
					b.Fatal(err)
				}
				if err := sess.SyncWAL(); err != nil { // the per-wave durability point
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.Run("wal=none", func(b *testing.B) {
		run(b, func() (*minoaner.Pipeline, error) { return minoaner.New(minoaner.Defaults()), nil })
	})
	for _, pol := range []minoaner.FsyncPolicy{minoaner.FsyncWave, minoaner.FsyncAlways} {
		pol := pol
		b.Run("wal="+pol.String(), func(b *testing.B) {
			run(b, func() (*minoaner.Pipeline, error) {
				cfg := minoaner.Defaults()
				cfg.WALFsync = pol
				return minoaner.Open(filepath.Join(b.TempDir(), "wal"), cfg)
			})
		})
	}
}

// --- PR 8 perf artifact --------------------------------------------

type pr8Append struct {
	Policy        string  `json:"policy"`
	NsPerRecord   int64   `json:"nsPerRecord"`
	Amplification float64 `json:"amplification"`
}

type pr8Ingest struct {
	Mode       string `json:"mode"`
	NsPerBatch int64  `json:"nsPerBatch"`
}

var pr8Written bool

// BenchmarkPR8Artifact regenerates BENCH_pr8.json, the durability
// perf record: append latency and byte amplification per fsync
// policy, recovery-replay latency and throughput, and the streaming
// ingest overhead the log adds at the public API (the acceptance
// criterion is waveOverheadPct < 10). Regenerate the committed copy
// locally with
//
//	go test -run='^$' -bench=PR8Artifact -benchtime=1x
//
// Timings vary with hardware and are recorded for trend reading;
// the recovery-equivalence guarantees are asserted by the crash-fault
// tests, not here.
func BenchmarkPR8Artifact(b *testing.B) {
	if pr8Written { // the harness re-enters with growing b.N; once is enough
		return
	}
	pr8Written = true

	var art struct {
		Append []pr8Append `json:"append"`
		Replay struct {
			Descs       int     `json:"descs"`
			NsPerReplay int64   `json:"nsPerReplay"`
			DescsPerSec float64 `json:"descsPerSec"`
		} `json:"replay"`
		SessionIngest   []pr8Ingest `json:"sessionIngest"`
		WaveOverheadPct float64     `json:"waveOverheadPct"`
	}

	payload := walBenchPayload(b)
	for _, pol := range []wal.Policy{wal.SyncOff, wal.SyncWave, wal.SyncAlways} {
		l, _, err := wal.Open(b.TempDir(), pol)
		if err != nil {
			b.Fatal(err)
		}
		iters := 4096
		if pol == wal.SyncAlways {
			iters = 128 // each append is an fsync; keep the artifact run short
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := l.Append(wal.TypeIngest, payload); err != nil {
				b.Fatal(err)
			}
			if pol == wal.SyncWave && (i+1)%64 == 0 {
				if err := l.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := l.Commit(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		st := l.Stats()
		art.Append = append(art.Append, pr8Append{
			Policy:        pol.String(),
			NsPerRecord:   elapsed.Nanoseconds() / int64(iters),
			Amplification: float64(st.Bytes) / float64(int64(iters)*int64(len(payload))),
		})
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}

	dir := filepath.Join(b.TempDir(), "wal")
	n := walBenchLog(b, dir)
	ns, _, _ := pr7Measure(3, func() {
		p, err := minoaner.Open(dir, minoaner.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		p.Close()
	})
	art.Replay.Descs = n
	art.Replay.NsPerReplay = ns
	art.Replay.DescsPerSec = float64(n) * 1e9 / float64(ns)

	all := streamDescriptions(benchWorld(b, 400))
	seed := len(all) / 2
	batches := (len(all) - seed + 9) / 10
	stream := func(open func() (*minoaner.Pipeline, error)) int64 {
		var total time.Duration
		const iters = 3
		for i := 0; i < iters; i++ {
			p, err := open()
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Add(all[:seed]); err != nil {
				b.Fatal(err)
			}
			sess, err := p.Start()
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			for lo := seed; lo < len(all); lo += 10 {
				hi := lo + 10
				if hi > len(all) {
					hi = len(all)
				}
				if err := sess.Ingest(all[lo:hi]); err != nil {
					b.Fatal(err)
				}
				if err := sess.SyncWAL(); err != nil {
					b.Fatal(err)
				}
			}
			total += time.Since(start)
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
		}
		return total.Nanoseconds() / int64(iters*batches)
	}
	modes := []struct {
		name string
		open func() (*minoaner.Pipeline, error)
	}{
		{"none", func() (*minoaner.Pipeline, error) { return minoaner.New(minoaner.Defaults()), nil }},
		{"wave", func() (*minoaner.Pipeline, error) {
			cfg := minoaner.Defaults()
			cfg.WALFsync = minoaner.FsyncWave
			return minoaner.Open(filepath.Join(b.TempDir(), "wal"), cfg)
		}},
		{"always", func() (*minoaner.Pipeline, error) {
			cfg := minoaner.Defaults()
			cfg.WALFsync = minoaner.FsyncAlways
			return minoaner.Open(filepath.Join(b.TempDir(), "wal"), cfg)
		}},
	}
	perBatch := map[string]int64{}
	for _, m := range modes {
		perBatch[m.name] = stream(m.open)
		art.SessionIngest = append(art.SessionIngest, pr8Ingest{Mode: m.name, NsPerBatch: perBatch[m.name]})
	}
	art.WaveOverheadPct = 100 * (float64(perBatch["wave"]) - float64(perBatch["none"])) / float64(perBatch["none"])

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr8.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_pr8.json")
}

// --- PR 9 cold-store benchmarks ------------------------------------

// storeBenchSeed fills st with n values of valSize deterministic
// pseudo-random bytes under the description namespace and returns the
// keys in insertion order.
func storeBenchSeed(b *testing.B, st store.Store, n, valSize int) [][]byte {
	b.Helper()
	keys := make([][]byte, n)
	rng := uint64(benchSeed)
	val := make([]byte, valSize)
	for i := range keys {
		keys[i] = store.U64Key('D', uint64(i))
		for j := range val {
			rng = rng*6364136223846793005 + 1442695040888963407
			val[j] = byte(rng >> 33)
		}
		if err := st.Put(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	return keys
}

// BenchmarkStoreGet measures point reads through the storage boundary:
// the mem reference map versus disk segments (locator lookup + pread +
// checksum). The multiplicative-stride walk defeats sequential-read
// locality, so every disk Get pays a real out-of-order segment read —
// the cost a cache miss pays in a paged session.
func BenchmarkStoreGet(b *testing.B) {
	const n, valSize = 4096, 512
	backends := []struct {
		name string
		open func(b *testing.B) (store.Store, error)
	}{
		{"mem", func(b *testing.B) (store.Store, error) { return store.NewMem(), nil }},
		{"disk", func(b *testing.B) (store.Store, error) {
			return store.OpenDisk(b.TempDir(), store.DiskOptions{})
		}},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			st, err := be.open(b)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			keys := storeBenchSeed(b, st, n, valSize)
			b.SetBytes(valSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[int(uint32(i)*2654435761)&(n-1)]
				if _, ok, err := st.Get(k); err != nil || !ok {
					b.Fatalf("get: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// --- PR 9 perf artifact --------------------------------------------

type pr9ColdRead struct {
	Backend string `json:"backend"`
	Reads   int    `json:"reads"`
	P50Ns   int64  `json:"p50Ns"`
	P99Ns   int64  `json:"p99Ns"`
}

type pr9Footprint struct {
	Store         string `json:"store"`
	StoreBytes    int64  `json:"storeBytes"`
	ResidentBytes int64  `json:"residentBytes"`
	Keys          int64  `json:"keys"`
	CacheHits     int64  `json:"cacheHits"`
	CacheMisses   int64  `json:"cacheMisses"`
}

type pr9Ingest struct {
	Store      string `json:"store"`
	NsPerBatch int64  `json:"nsPerBatch"`
}

var pr9Written bool

// BenchmarkPR9Artifact regenerates BENCH_pr9.json, the cold-store perf
// record: point-read latency percentiles against each backend, the
// session footprint gauges under identical streamed workloads (disk
// resident bytes must sit below mem — the artifact's headline ratio,
// asserted here because the gauges are deterministic for the fixed
// seed), and the streaming ingest overhead the disk store adds at the
// public API (the acceptance criterion reads off diskOverheadPct <=
// 15). Regenerate the committed copy locally with
//
//	go test -run='^$' -bench=PR9Artifact -benchtime=1x
//
// Timings vary with hardware and are recorded for trend reading; the
// bit-identity guarantees live in the store differential suite, not
// here.
func BenchmarkPR9Artifact(b *testing.B) {
	if pr9Written { // the harness re-enters with growing b.N; once is enough
		return
	}
	pr9Written = true

	var art struct {
		ColdRead            []pr9ColdRead  `json:"coldRead"`
		Footprint           []pr9Footprint `json:"footprint"`
		ResidentDiskOverMem float64        `json:"residentDiskOverMem"`
		SessionIngest       []pr9Ingest    `json:"sessionIngest"`
		DiskOverheadPct     float64        `json:"diskOverheadPct"`
	}

	// Point-read percentiles: per-Get wall times over a stride walk of
	// half-KiB records, sorted once per backend.
	const n, valSize = 4096, 512
	for _, be := range []struct {
		name string
		open func() (store.Store, error)
	}{
		{"mem", func() (store.Store, error) { return store.NewMem(), nil }},
		{"disk", func() (store.Store, error) {
			return store.OpenDisk(b.TempDir(), store.DiskOptions{})
		}},
	} {
		st, err := be.open()
		if err != nil {
			b.Fatal(err)
		}
		keys := storeBenchSeed(b, st, n, valSize)
		lat := make([]int64, n)
		for i := range lat {
			k := keys[int(uint32(i)*2654435761)&(n-1)]
			start := time.Now()
			if _, ok, err := st.Get(k); err != nil || !ok {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
			lat[i] = time.Since(start).Nanoseconds()
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		art.ColdRead = append(art.ColdRead, pr9ColdRead{
			Backend: be.name, Reads: n,
			P50Ns: lat[n/2], P99Ns: lat[n*99/100],
		})
	}

	// Footprint: one streamed session per store mode, small caches so
	// the resident gauge reflects the locator, not a warm LRU.
	all := streamDescriptions(benchWorld(b, 400))
	seed := len(all) / 2
	gaugesUnder := func(mode string) minoaner.Gauges {
		cfg := minoaner.Defaults()
		cfg.Store = mode
		if mode == "disk" {
			cfg.StoreDir = b.TempDir()
		}
		cfg.DescCache = 64
		cfg.PostingCache = 128
		p := minoaner.New(cfg)
		if err := p.Add(all[:seed]); err != nil {
			b.Fatal(err)
		}
		sess, err := p.Start()
		if err != nil {
			b.Fatal(err)
		}
		for lo := seed; lo < len(all); lo += 10 {
			hi := lo + 10
			if hi > len(all) {
				hi = len(all)
			}
			if err := sess.Ingest(all[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sess.Resume(0); err != nil {
			b.Fatal(err)
		}
		g := sess.Gauges()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		return g
	}
	footprints := map[string]minoaner.Gauges{}
	for _, mode := range []string{"mem", "disk"} {
		g := gaugesUnder(mode)
		footprints[mode] = g
		art.Footprint = append(art.Footprint, pr9Footprint{
			Store:         mode,
			StoreBytes:    g.StoreBytes,
			ResidentBytes: g.StoreResidentBytes,
			Keys:          g.StoreKeys,
			CacheHits:     g.StoreCacheHits,
			CacheMisses:   g.StoreCacheMisses,
		})
	}
	art.ResidentDiskOverMem = float64(footprints["disk"].StoreResidentBytes) /
		float64(footprints["mem"].StoreResidentBytes)
	if art.ResidentDiskOverMem >= 1 {
		b.Fatalf("disk resident bytes %d not below mem %d",
			footprints["disk"].StoreResidentBytes, footprints["mem"].StoreResidentBytes)
	}

	// Streaming ingest overhead: the same batches through a storeless,
	// mem-backed, and disk-backed session — per-batch wall time at the
	// public API. Caches are sized to the hot working set (the
	// recommended operator setting under sustained ingest) so the metric
	// isolates the write path; the footprint run above shows the
	// bounded-RAM configuration instead. Modes run paired inside each
	// iteration and the overhead is the median of per-iteration ratios:
	// machine-load drift moves both sides of a pair together, so the
	// ratio sheds it, and the median sheds outlier pairs.
	batches := (len(all) - seed + 9) / 10
	stream := func(mode string) time.Duration {
		cfg := minoaner.Defaults()
		cfg.Store = mode
		if mode == "disk" {
			cfg.StoreDir = b.TempDir()
		}
		cfg.DescCache = 8192
		cfg.PostingCache = 65536
		p := minoaner.New(cfg)
		if err := p.Add(all[:seed]); err != nil {
			b.Fatal(err)
		}
		sess, err := p.Start()
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for lo := seed; lo < len(all); lo += 10 {
			hi := lo + 10
			if hi > len(all) {
				hi = len(all)
			}
			if err := sess.Ingest(all[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	modes := []string{"", "mem", "disk"}
	best := map[string]time.Duration{}
	var ratios []float64
	const iters = 7
	for i := 0; i < iters; i++ {
		var none, disk time.Duration
		for _, mode := range modes {
			elapsed := stream(mode)
			name := mode
			switch name {
			case "":
				name, none = "none", elapsed
			case "disk":
				disk = elapsed
			}
			if cur, ok := best[name]; !ok || elapsed < cur {
				best[name] = elapsed
			}
		}
		if i == 0 {
			continue // warm-up pair: page cache and allocator still settling
		}
		ratios = append(ratios, float64(disk)/float64(none))
	}
	perBatch := map[string]int64{}
	for _, mode := range []string{"none", "mem", "disk"} {
		perBatch[mode] = best[mode].Nanoseconds() / int64(batches)
		art.SessionIngest = append(art.SessionIngest, pr9Ingest{Store: mode, NsPerBatch: perBatch[mode]})
	}
	sort.Float64s(ratios)
	art.DiskOverheadPct = 100 * (ratios[len(ratios)/2] - 1)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr9.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_pr9.json")
}

type pr10Ingest struct {
	Runner     string `json:"runner"`
	NsPerBatch int64  `json:"nsPerBatch"`
}

type pr10Dispatch struct {
	Runner    string `json:"runner"`
	NsPerTask int64  `json:"nsPerTask"`
}

var pr10Written bool

// BenchmarkPR10Artifact regenerates BENCH_pr10.json, the distributed-
// execution perf record: streamed MapReduce-engine ingest throughput on
// the in-process runner vs a two-worker subprocess pool (the acceptance
// criterion reads off procIngestOverLocal <= 2.5), the shuffle bytes
// both runs put across the map→reduce boundary (asserted equal — the
// gauge is runner-independent), and the per-task dispatch overhead the
// pipe protocol adds over a direct call. Regenerate the committed copy
// locally with
//
//	go test -run='^$' -bench=PR10Artifact -benchtime=1x
//
// Timings vary with hardware; the bit-identity guarantees live in the
// process-boundary differential suite, not here.
func BenchmarkPR10Artifact(b *testing.B) {
	if pr10Written { // the harness re-enters with growing b.N; once is enough
		return
	}
	pr10Written = true

	var art struct {
		SessionIngest       []pr10Ingest   `json:"sessionIngest"`
		ProcIngestOverLocal float64        `json:"procIngestOverLocal"`
		ShuffleBytes        int64          `json:"shuffleBytes"`
		Dispatch            []pr10Dispatch `json:"dispatch"`
		DispatchOverheadNs  int64          `json:"dispatchOverheadNs"`
	}

	// Streamed ingest through the MapReduce engine: the same batches on
	// the in-process runner and on a two-worker subprocess pool. Runners
	// run paired inside each iteration and the headline ratio is the
	// median of per-iteration ratios, so machine-load drift — which moves
	// both sides of a pair together — cancels out of it.
	all := streamDescriptions(benchWorld(b, 300))
	seed := len(all) / 2
	batches := (len(all) - seed + 9) / 10
	stream := func(runner string) (time.Duration, int64) {
		cfg := minoaner.Defaults()
		cfg.Workers = 2
		cfg.MapReduce = true
		cfg.MRRunner = runner
		p := minoaner.New(cfg)
		if err := p.Add(all[:seed]); err != nil {
			b.Fatal(err)
		}
		sess, err := p.Start()
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for lo := seed; lo < len(all); lo += 10 {
			hi := lo + 10
			if hi > len(all) {
				hi = len(all)
			}
			if err := sess.Ingest(all[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		shuffle := sess.Gauges().MRShuffleBytes
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		return elapsed, shuffle
	}
	best := map[string]time.Duration{}
	shuffle := map[string]int64{}
	var ratios []float64
	const iters = 7
	for i := 0; i < iters; i++ {
		var local, proc time.Duration
		for _, runner := range []string{"local", "proc"} {
			elapsed, sh := stream(runner)
			shuffle[runner] = sh
			if runner == "local" {
				local = elapsed
			} else {
				proc = elapsed
			}
			if cur, ok := best[runner]; !ok || elapsed < cur {
				best[runner] = elapsed
			}
		}
		if i == 0 {
			continue // warm-up pair: binaries, page cache, allocator settling
		}
		ratios = append(ratios, float64(proc)/float64(local))
	}
	for _, runner := range []string{"local", "proc"} {
		art.SessionIngest = append(art.SessionIngest, pr10Ingest{
			Runner: runner, NsPerBatch: best[runner].Nanoseconds() / int64(batches),
		})
	}
	sort.Float64s(ratios)
	art.ProcIngestOverLocal = ratios[len(ratios)/2]
	if art.ProcIngestOverLocal > 2.5 {
		b.Fatalf("proc-runner ingest overhead %.2fx exceeds the 2.5x budget", art.ProcIngestOverLocal)
	}
	if shuffle["local"] != shuffle["proc"] || shuffle["local"] == 0 {
		b.Fatalf("shuffle bytes not runner-independent: local %d, proc %d",
			shuffle["local"], shuffle["proc"])
	}
	art.ShuffleBytes = shuffle["local"]

	// Per-task dispatch overhead: a registered near-empty job (one
	// record, one key) timed per round trip. Each run is one map task
	// plus one reduce task, so per-task cost is elapsed over 2·runs; the
	// proc−local gap is what a frame round trip through a pooled worker
	// costs over a direct call.
	dispatchJob, err := mapreduce.NewJob("purge-histogram", "")
	if err != nil {
		b.Fatal(err)
	}
	pool := mapreduce.NewProcRunner()
	defer pool.Close()
	tiny := []string{"3"}
	const runs = 300
	perTask := map[string]int64{}
	for _, rn := range []struct {
		name string
		cfg  mapreduce.Config
	}{
		{"local", mapreduce.Config{Workers: 1}},
		{"proc", mapreduce.Config{Workers: 1, Runner: pool}},
	} {
		// One warm-up run spawns the pool's worker outside the timing.
		if _, err := mapreduce.Run(dispatchJob, tiny, rn.cfg); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := mapreduce.Run(dispatchJob, tiny, rn.cfg); err != nil {
				b.Fatal(err)
			}
		}
		perTask[rn.name] = time.Since(start).Nanoseconds() / (2 * runs)
		art.Dispatch = append(art.Dispatch, pr10Dispatch{Runner: rn.name, NsPerTask: perTask[rn.name]})
	}
	art.DispatchOverheadNs = perTask["proc"] - perTask["local"]

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr10.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_pr10.json")
}
