// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (DESIGN.md §3). Each BenchmarkXx runs the corresponding
// experiment at laptop scale; run
//
//	go test -bench=. -benchmem
//
// and compare the reported rows with EXPERIMENTS.md. Component
// micro-benchmarks for the hot paths follow the experiment benches.
package minoaner_test

import (
	"fmt"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/parmeta"
	"repro/internal/pipeline"
	"repro/internal/rdf"
	"repro/internal/tokenize"
)

const benchSeed = 2016 // EDBT year; fixed so every run regenerates identical tables

// report runs an experiment once, prints its table under -v, and
// exposes rows/op-style metrics for regressions.
func report(b *testing.B, run func() *experiments.Table) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = run()
	}
	b.StopTimer()
	var sb strings.Builder
	tab.Fprint(&sb)
	b.Log("\n" + sb.String())
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

func BenchmarkF1Pipeline(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F1Pipeline(benchSeed, 300) })
}

func BenchmarkT1Blocking(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T1Blocking(benchSeed, []int{200, 400}) })
}

func BenchmarkT2BlockCleaning(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T2BlockCleaning(benchSeed, 400) })
}

func BenchmarkT3MetaBlocking(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T3MetaBlocking(benchSeed, 300) })
}

func BenchmarkF2Progressive(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F2Progressive(benchSeed, 300) })
}

func BenchmarkF3Benefits(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.F3Benefits(benchSeed, 300) })
}

func BenchmarkT4NeighborEvidence(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T4NeighborEvidence(benchSeed, 300) })
}

func BenchmarkT5Parallel(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.T5Parallel(benchSeed, 400, []int{1, 2, 4, 8})
	})
}

func BenchmarkT7ParallelShared(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.T7ParallelShared(benchSeed, 400, []int{1, 2, 4, 8})
	})
}

func BenchmarkF4Scalability(b *testing.B) {
	report(b, func() *experiments.Table {
		return experiments.F4Scalability(benchSeed, []int{100, 200, 400, 800})
	})
}

func BenchmarkT6DirtyER(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.T6DirtyER(benchSeed, 300) })
}

// --- ablation benches (design choices called out in DESIGN.md) -----

func BenchmarkA1BlockingMethods(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A1BlockingMethods(benchSeed, 300) })
}

func BenchmarkA2NeighborWeight(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A2NeighborWeight(benchSeed, 300) })
}

func BenchmarkA3SchedulerComponents(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A3SchedulerComponents(benchSeed, 300) })
}

func BenchmarkA4SchemeProgressive(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A4SchemeProgressive(benchSeed, 300) })
}

func BenchmarkA5PruningReciprocal(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A5PruningReciprocal(benchSeed, 300) })
}

func BenchmarkA6Clustering(b *testing.B) {
	report(b, func() *experiments.Table { return experiments.A6Clustering(benchSeed, 300) })
}

// --- component micro-benchmarks -----------------------------------

func benchWorld(b *testing.B, n int) *datagen.World {
	b.Helper()
	w, err := datagen.Generate(datagen.TwoKBs(benchSeed, n, datagen.Center(), datagen.Center()))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkTokenBlocking(b *testing.B) {
	w := benchWorld(b, 1000)
	opts := tokenize.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocking.TokenBlocking(w.Collection, opts)
	}
}

func BenchmarkMetaBlockingBuild(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metablocking.Build(col, metablocking.ECBS)
	}
}

func BenchmarkPruneWNP(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Prune(metablocking.WNP, opts)
	}
}

// BenchmarkParMetaBuild sweeps the shared-memory builder's worker
// count on one workload; compare ns/op across sub-benchmarks for the
// speedup curve (workers=1 is the sequential reference engine).
func BenchmarkParMetaBuild(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parmeta.Build(col, metablocking.ECBS, workers)
			}
		})
	}
}

// BenchmarkParMetaPrune sweeps the parallel pruner's worker count over
// the node-centric WNP algorithm, the pipeline default.
func BenchmarkParMetaPrune(b *testing.B) {
	w := benchWorld(b, 600)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := parmeta.Build(col, metablocking.ECBS, 4)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parmeta.Prune(g, metablocking.WNP, opts, workers)
			}
		})
	}
}

// BenchmarkFrontEndBlocking sweeps tokenize + token blocking across
// the engine layer's worker counts (workers=1 is the sequential
// reference engine). Each sub-benchmark gets its own world so no
// engine inherits another's warm token cache; after the first
// iteration the cache is warm, as in a real pipeline run.
func BenchmarkFrontEndBlocking(b *testing.B) {
	opts := tokenize.Default()
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			w := benchWorld(b, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TokenBlocking(w.Collection, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontEndCleaning sweeps block purging + filtering across
// the engine layer's worker counts on one pre-built block collection.
func BenchmarkFrontEndCleaning(b *testing.B) {
	w := benchWorld(b, 1000)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default())
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				purged, err := eng.Purge(col, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Filter(purged, 0.8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontEndRun drives the whole front-end — blocking,
// cleaning, graph build, pruning — through each engine, the wall-clock
// the engine refactor targets.
func BenchmarkFrontEndRun(b *testing.B) {
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	for _, workers := range []int{1, 2, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			w := benchWorld(b, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, w.Collection, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngest is the streaming cost profile: folding a small batch
// into a live front-end state (pipeline.Start + Engine.Ingest) versus
// rebuilding the front-end from scratch over the grown corpus. The
// ingest path re-tokenizes only the batch and updates the blocking
// graph only in the batch's neighborhood, so its ns/op must sit far
// below the rebuild's — the delta-proportionality the incremental
// subsystem exists for. Per-iteration state construction is excluded
// from the timer.
func BenchmarkIngest(b *testing.B) {
	const delta = 10
	w := benchWorld(b, 1000) // two KBs ⇒ ~2000 descriptions
	full := w.Collection
	n := full.Len()
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	for _, workers := range []int{1, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("ingest-batch/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				grown := kb.NewCollection()
				copyInto(grown, 0, n-delta)
				st, err := pipeline.Start(eng, grown, opt)
				if err != nil {
					b.Fatal(err)
				}
				copyInto(grown, n-delta, n)
				b.StartTimer()
				if err := eng.Ingest(st); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if st.LastUpdate.Rebuilt {
					b.Fatal("ingest fell back to a full graph rebuild")
				}
				b.ReportMetric(float64(st.LastUpdate.EdgesTouched), "touched-edges")
				b.ReportMetric(float64(st.Front.Graph.NumEdges()), "total-edges")
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("rebuild/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			scratch := kb.NewCollection()
			copyInto(scratch, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, scratch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvict is the deletion cost profile, the mirror of
// BenchmarkIngest: splicing a small batch of departures out of a live
// front-end state (Engine.Evict) versus rebuilding the front-end from
// scratch over the surviving corpus. The evict path touches only the
// postings the departed descriptions carried and re-accumulates only
// the graph neighborhood their blocks span — it must never fall back
// to a full graph rebuild, which the benchmark asserts alongside the
// touched-edges/total-edges ratio.
func BenchmarkEvict(b *testing.B) {
	const delta = 10
	w := benchWorld(b, 1000) // two KBs ⇒ ~2000 descriptions
	full := w.Collection
	n := full.Len()
	opt := pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	copyInto := func(dst *kb.Collection, lo, hi int) {
		for id := lo; id < hi; id++ {
			d := full.Desc(id)
			dst.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
		}
	}
	for _, workers := range []int{1, 4} {
		eng := pipeline.Select(workers, false)
		b.Run(fmt.Sprintf("evict-batch/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				grown := kb.NewCollection()
				copyInto(grown, 0, n)
				st, err := pipeline.Start(eng, grown, opt)
				if err != nil {
					b.Fatal(err)
				}
				// A spread of departures across both KBs, away from the
				// single-KB boundary.
				for id := 0; id < delta; id++ {
					grown.Evict(3 + id*((n-6)/delta))
				}
				b.StartTimer()
				if err := eng.Evict(st); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if st.LastUpdate.Rebuilt {
					b.Fatal("evict fell back to a full graph rebuild")
				}
				b.ReportMetric(float64(st.LastUpdate.EdgesTouched), "touched-edges")
				b.ReportMetric(float64(st.Front.Graph.NumEdges()), "total-edges")
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("rebuild/%s/workers=%d", eng.Name(), workers), func(b *testing.B) {
			scratch := kb.NewCollection()
			copyInto(scratch, 0, n)
			for id := 0; id < delta; id++ {
				scratch.Evict(3 + id*((n-6)/delta))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(eng, scratch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatching drives the progressive matching stage — the
// schedule → match → update loop over the pruned comparison list —
// sequentially (workers=1) and through the speculative-score/
// serial-commit parallel engine. Every worker count produces a
// bit-identical trace (differentially tested in internal/core); the
// sub-benchmark ratio is the matching-stage speedup. The workload uses
// token-rich descriptions (tens of tokens, like the paper's DBpedia
// and BTC corpora) so value similarity carries its real-world share of
// the cost.
func BenchmarkMatching(b *testing.B) {
	cfg := datagen.Config{
		Seed:        benchSeed,
		NumEntities: 800,
		NameTokens:  12,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.9, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Profile{
				TokenKeep: 0.75, ExtraTokens: 28, AttrsPerEntity: 56, LinkKeep: 0.9}},
		},
		LinksPerEntity: 3,
	}
	w, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewResolver(m, edges, core.Config{Workers: workers}).Run()
			}
		})
	}
}

func BenchmarkMatcherValueSim(b *testing.B) {
	w := benchWorld(b, 400)
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ValueSim(i%w.Collection.Len(), (i*7+1)%w.Collection.Len())
	}
}

func BenchmarkMapReduceWordShuffle(b *testing.B) {
	w := benchWorld(b, 400)
	opts := tokenize.Default()
	cfg := mapreduce.Config{Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parblock.TokenBlocking(w.Collection, opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTriplesDecode(b *testing.B) {
	w := benchWorld(b, 300)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	w := benchWorld(b, 300)
	docA, _ := rdf.WriteString(w.Triples("alpha"))
	docB, _ := rdf.WriteString(w.Triples("betaKB"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := minoaner.New(minoaner.Defaults())
		if err := p.LoadKB("alpha", strings.NewReader(docA)); err != nil {
			b.Fatal(err)
		}
		if err := p.LoadKB("betaKB", strings.NewReader(docB)); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Resolve(); err != nil {
			b.Fatal(err)
		}
	}
}
