package minoaner_test

import (
	"fmt"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/rdf"
)

// streamDescriptions converts a generated world into the ingest-order
// description stream: ids interleaved round-robin across KBs, so every
// batch spans all KBs (the steady-state streaming shape).
func streamDescriptions(w *datagen.World) []minoaner.Description {
	col := w.Collection
	perKB := make([][]int, col.NumKBs())
	for id := 0; id < col.Len(); id++ {
		perKB[col.KBOf(id)] = append(perKB[col.KBOf(id)], id)
	}
	var out []minoaner.Description
	for i := 0; len(out) < col.Len(); i++ {
		for _, ids := range perKB {
			if i < len(ids) {
				d := col.Desc(ids[i])
				out = append(out, minoaner.Description{
					KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
				})
			}
		}
	}
	return out
}

// TestIngestEquivalentToFromScratch is the streaming headline
// guarantee, end to end at the public API: for any split of the corpus
// into K ingest batches, any worker count, and any budget, ingesting
// the batches into a live Session and then resolving produces exactly
// the from-scratch result — the same matches in the same order with
// the same scores and flags, the same statistics, and the same
// clusters.
func TestIngestEquivalentToFromScratch(t *testing.T) {
	w := hardSessionWorld(t, 271, 140)
	all := streamDescriptions(w)
	seedN := len(all) / 4
	for _, k := range []int{1, 2, 5} {
		for _, workers := range []int{1, 4} {
			for _, budget := range []int{7, 0} {
				t.Run(fmt.Sprintf("K=%d/workers=%d/budget=%d", k, workers, budget), func(t *testing.T) {
					cfg := minoaner.Defaults()
					cfg.Workers = workers

					// Incremental: seed, Start, K ingest batches, resolve.
					p := minoaner.New(cfg)
					if err := p.Add(all[:seedN]); err != nil {
						t.Fatal(err)
					}
					s, err := p.Start()
					if err != nil {
						t.Fatal(err)
					}
					rest := all[seedN:]
					for b := 0; b < k; b++ {
						lo, hi := b*len(rest)/k, (b+1)*len(rest)/k
						if err := s.Ingest(rest[lo:hi]); err != nil {
							t.Fatal(err)
						}
					}
					got, err := s.Resume(budget)
					if err != nil {
						t.Fatal(err)
					}

					// From-scratch oracle over the identical corpus.
					p2 := minoaner.New(cfg)
					if err := p2.Add(all); err != nil {
						t.Fatal(err)
					}
					s2, err := p2.Start()
					if err != nil {
						t.Fatal(err)
					}
					want, err := s2.Resume(budget)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, "ingest-vs-scratch", want, got)
				})
			}
		}
	}
}

// TestIngestKBEquivalent covers the RDF streaming path, including the
// merge case: the second KB's triples arrive in two chunks split
// mid-subject, so some descriptions are extended by the ingest.
func TestIngestKBEquivalent(t *testing.T) {
	w := hardSessionWorld(t, 272, 120)
	alphaDoc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	betaTriples := w.Triples("betaKB")
	cut := len(betaTriples)/2 + 1 // deliberately not on a subject boundary
	firstDoc, err := rdf.WriteString(betaTriples[:cut])
	if err != nil {
		t.Fatal(err)
	}
	secondDoc, err := rdf.WriteString(betaTriples[cut:])
	if err != nil {
		t.Fatal(err)
	}
	betaDoc, err := rdf.WriteString(betaTriples)
	if err != nil {
		t.Fatal(err)
	}

	cfg := minoaner.Defaults()
	cfg.Workers = 4

	p := minoaner.New(cfg)
	if err := p.LoadKB("alpha", strings.NewReader(alphaDoc)); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadKB("betaKB", strings.NewReader(firstDoc)); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestKB("betaKB", strings.NewReader(secondDoc)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}

	p2 := minoaner.New(cfg)
	if err := p2.LoadKB("alpha", strings.NewReader(alphaDoc)); err != nil {
		t.Fatal(err)
	}
	if err := p2.LoadKB("betaKB", strings.NewReader(betaDoc)); err != nil {
		t.Fatal(err)
	}
	s2, err := p2.Start()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s2.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ingest-kb", want, got)
}

// matchQuality scores a Result's clusters against the world's ground
// truth, in the world's id space, over cross-KB pairs.
func matchQuality(t *testing.T, w *datagen.World, res *minoaner.Result) eval.MatchQuality {
	t.Helper()
	var pairs []blocking.Pair
	for _, c := range res.Clusters {
		ids := make([]int, 0, len(c))
		for _, r := range c {
			id, ok := w.Collection.IDOf(r.KB, r.URI)
			if !ok {
				t.Fatalf("cluster member %s/%s not in world", r.KB, r.URI)
			}
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if w.Collection.CrossKB(ids[i], ids[j]) {
					pairs = append(pairs, blocking.MakePair(ids[i], ids[j]))
				}
			}
		}
	}
	return eval.EvaluateMatches(w.Collection, w.Truth, pairs)
}

// TestIngestBetweenResumes exercises the mid-session contract:
// spending budget, then ingesting, then resuming keeps resolution
// monotonic — earlier matches stay resolved at their trace positions
// and executed pairs are never re-spent against the new budget unless
// the ingest re-opened them as rechecks.
func TestIngestBetweenResumes(t *testing.T) {
	w := hardSessionWorld(t, 273, 140)
	all := streamDescriptions(w)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := minoaner.Defaults()
			cfg.Workers = workers

			p := minoaner.New(cfg)
			if err := p.Add(all[:len(all)/2]); err != nil {
				t.Fatal(err)
			}
			s, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			mid, err := s.Resume(60)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Ingest(all[len(all)/2:]); err != nil {
				t.Fatal(err)
			}
			got, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			// Monotonicity: every pre-ingest match is still in the final
			// result, at the same position.
			if len(got.Matches) < len(mid.Matches) {
				t.Fatalf("matches shrank from %d to %d after ingest", len(mid.Matches), len(got.Matches))
			}
			for i, m := range mid.Matches {
				if got.Matches[i] != m {
					t.Fatalf("match %d changed after ingest: %+v -> %+v", i, m, got.Matches[i])
				}
			}
			if got.Stats.Comparisons <= mid.Stats.Comparisons {
				t.Fatal("ingest added no comparisons")
			}
		})
	}
}

// TestIngestBetweenResumesQuality pins the quality contract of
// interleaved mode on a value-dominated corpus: resolving part of the
// stream early, then ingesting the rest and draining, must reach the
// from-scratch run's quality. (On evidence-starved periphery corpora
// early commitment can trade a little recall for precision — the
// bitwise guarantee is for ingest-then-resolve, tested above.)
func TestIngestBetweenResumesQuality(t *testing.T) {
	w, err := datagen.Generate(datagen.Config{
		Seed: 275, NumEntities: 140,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Center()},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Center()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := streamDescriptions(w)
	p2 := minoaner.New(minoaner.Defaults())
	if err := p2.Add(all); err != nil {
		t.Fatal(err)
	}
	want, err := p2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wantQ := matchQuality(t, w, want)
	for _, leg := range []int{30, 120} {
		t.Run(fmt.Sprintf("leg=%d", leg), func(t *testing.T) {
			p := minoaner.New(minoaner.Defaults())
			if err := p.Add(all[:len(all)/2]); err != nil {
				t.Fatal(err)
			}
			s, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Resume(leg); err != nil {
				t.Fatal(err)
			}
			if err := s.Ingest(all[len(all)/2:]); err != nil {
				t.Fatal(err)
			}
			got, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			gotQ := matchQuality(t, w, got)
			if gotQ.F1 < wantQ.F1-0.01 || gotQ.Recall < wantQ.Recall-0.01 {
				t.Fatalf("drained session quality %v, from-scratch %v", gotQ, wantQ)
			}
		})
	}
}

// TestIngestValidation pins the error paths.
func TestIngestValidation(t *testing.T) {
	w := hardSessionWorld(t, 274, 60)
	all := streamDescriptions(w)
	p := minoaner.New(minoaner.Defaults())
	if err := p.Add(all); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest([]minoaner.Description{{KB: "", URI: "x"}}); err == nil {
		t.Error("empty KB accepted")
	}
	if err := s.IngestKB("", strings.NewReader("")); err == nil {
		t.Error("empty KB name accepted")
	}
	if err := p.Add([]minoaner.Description{{KB: "k", URI: ""}}); err == nil {
		t.Error("empty URI accepted by Add")
	}
	// An empty batch is a no-op, not an error.
	if err := s.Ingest(nil); err != nil {
		t.Errorf("empty ingest: %v", err)
	}
	// Sessions share the pipeline's collection: once a newer session
	// exists, the superseded one must refuse to ingest — before
	// mutating anything — rather than silently desynchronize it. The
	// current session always may, even after earlier Resolve calls.
	s2, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumDescriptions()
	if err := s.Ingest([]minoaner.Description{{KB: "newkb", URI: "http://x/1"}}); err == nil {
		t.Error("ingest on a superseded session accepted")
	}
	if err := s.IngestKB("newkb", strings.NewReader("")); err == nil {
		t.Error("IngestKB on a superseded session accepted")
	}
	if p.NumDescriptions() != before {
		t.Error("refused ingest still mutated the shared collection")
	}
	if err := s2.Ingest([]minoaner.Description{{KB: "newkb", URI: "http://x/1"}}); err != nil {
		t.Errorf("current session refused to ingest: %v", err)
	}
}
