// Process-boundary differential suite: the MapReduce engine's output
// must not move a bit when its tasks leave the process. The oracle is
// the same engine on the in-process LocalRunner — the one comparison
// the repo's digest discipline guarantees (cross-engine float
// round-off is documented out of scope) — and the subject is the
// identical plan shipped to `minoaner worker` subprocesses over the
// framed pipe protocol, swept across the golden corpus, ingest/evict
// interleavings, WAL recovery, and a mid-task worker SIGKILL.
package minoaner_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	minoaner "repro"
)

// mrConfig returns the MapReduce-engine config pinned to one runner,
// immune to the CI matrix's MINOANER_MR_RUNNER leg.
func mrConfig(runner string) minoaner.Config {
	cfg := minoaner.Defaults()
	cfg.Workers = 4
	cfg.MapReduce = true
	cfg.MRRunner = runner
	return cfg
}

// TestProcRunnerDifferential is the tentpole's correctness proof: the
// dataflow front end digests identically whether its tasks run on
// in-process goroutines or on worker subprocesses.
func TestProcRunnerDifferential(t *testing.T) {
	t.Run("golden", func(t *testing.T) {
		// The pinned corpus, resolved end to end under each runner.
		load := func(p *minoaner.Pipeline) {
			w := goldenWorld(t)
			for _, name := range []string{"alpha", "betaKB"} {
				var docs []minoaner.Description
				for id := 0; id < w.Collection.Len(); id++ {
					d := w.Collection.Desc(id)
					if d.KB == name {
						docs = append(docs, minoaner.Description{
							KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
						})
					}
				}
				if err := p.Add(docs); err != nil {
					t.Fatal(err)
				}
			}
		}
		digest := func(runner string) string {
			p := minoaner.New(mrConfig(runner))
			defer p.Close()
			load(p)
			out, err := p.Resolve()
			if err != nil {
				t.Fatalf("runner=%q: %v", runner, err)
			}
			return resultDigest(out)
		}
		want := digest("local")
		if got := digest("proc"); got != want {
			t.Errorf("golden corpus: proc digest %s, local %s", got, want)
		}
	})

	t.Run("interleavings", func(t *testing.T) {
		scenarios := []struct {
			name string
			ttl  int
			thr  float64
		}{
			{"plain", 0, -1},
			{"ttl", 2, -1},
			{"ttl+compaction", 2, 0.2},
		}
		for _, sc := range scenarios {
			t.Run(sc.name, func(t *testing.T) {
				ops := recoveryOps(t, 8)
				local := mrConfig("local")
				local.TTL = sc.ttl
				local.CompactionThreshold = sc.thr
				want := runOpsDigest(t, local, ops)
				if want == "empty" {
					t.Fatal("workload resolves to nothing — the axis would prove nothing")
				}
				proc := mrConfig("proc")
				proc.TTL = sc.ttl
				proc.CompactionThreshold = sc.thr
				if got := runOpsDigest(t, proc, ops); got != want {
					t.Errorf("proc digest %s, want local %s", got, want)
				}
			})
		}
	})

	t.Run("wal-recovery", func(t *testing.T) {
		// A workload recorded under the proc runner recovers — replaying
		// every pass through subprocesses again — to the digest of a
		// local-runner pipeline that never restarted.
		ops := recoveryOps(t, 8)
		local := mrConfig("local")
		local.CompactionThreshold = -1
		want := runOpsDigest(t, local, ops)

		proc := mrConfig("proc")
		proc.CompactionThreshold = -1
		raw := recordWorkload(t, proc, ops)
		k, p := surviveAndRecover(t, proc, raw)
		if k != len(ops) {
			t.Fatalf("full log holds %d records, want %d", k, len(ops))
		}
		got := finishDigest(t, p)
		p.Close()
		if got != want {
			t.Errorf("recovered proc digest %s, want local %s", got, want)
		}
	})

	t.Run("mid-task-kill", func(t *testing.T) {
		// A worker SIGKILLed between receiving a task and answering it, at
		// every mutation of the workload: the retried run must not move a
		// bit, and the retry must be visible in the gauges.
		ops := recoveryOps(t, 8)
		local := mrConfig("local")
		want := runOpsDigest(t, local, ops)

		p := minoaner.New(mrConfig("proc"))
		defer p.Close()
		for _, op := range ops {
			if pr := p.MRProcRunner(); pr != nil {
				pr.KillNextTask() // arm before every post-Start mutation
			}
			applyOp(t, p, op)
		}
		got := finishDigest(t, p)
		if got != want {
			t.Errorf("digest with mid-task kills %s, want %s", got, want)
		}
		g := p.Current().Gauges()
		if g.MRRetries == 0 {
			t.Error("mid-task kills registered no retries in the gauges")
		}
		if g.MRWorkers < 2 {
			t.Errorf("mrWorkers=%d; killed workers must be replaced by fresh ones", g.MRWorkers)
		}
		if g.MRShuffleBytes == 0 {
			t.Error("mrShuffleBytes gauge never moved")
		}
	})
}

// TestMRRunnerConfig pins the knob's surface: the env hook feeds
// Defaults, explicit spellings pass validation, and a typo fails Start
// with an error naming the bad value instead of silently running
// in-process.
func TestMRRunnerConfig(t *testing.T) {
	t.Setenv("MINOANER_MR_RUNNER", "proc")
	if got := minoaner.Defaults().MRRunner; got != "proc" {
		t.Errorf("Defaults().MRRunner=%q, want env's proc", got)
	}
	t.Setenv("MINOANER_MR_RUNNER", "")

	cfg := mrConfig("bogus")
	p := minoaner.New(cfg)
	defer p.Close()
	if err := p.Add([]minoaner.Description{{KB: "a", URI: "http://x/1",
		Attrs: []minoaner.Attribute{{Predicate: "name", Value: "one"}}}}); err != nil {
		t.Fatal(err)
	}
	_, err := p.Start()
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown runner: err=%v, want it named", err)
	}

	// The runner knob is MapReduce-scoped: on the shared engine it is
	// validated but otherwise inert.
	scfg := minoaner.Defaults()
	scfg.Workers = 4
	scfg.MRRunner = "proc"
	sp := minoaner.New(scfg)
	defer sp.Close()
	if err := sp.Add([]minoaner.Description{{KB: "a", URI: "http://x/1",
		Attrs: []minoaner.Attribute{{Predicate: "name", Value: "one"}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Start(); err != nil {
		t.Fatalf("proc runner on shared engine: %v", err)
	}
	if sp.MRProcRunner() != nil {
		t.Error("shared engine spawned a worker pool")
	}
}

// TestStartContextCancelled: cancelling the front-end build returns the
// cancellation with no session created; a later un-cancelled Start
// succeeds on the unchanged pipeline.
func TestStartContextCancelled(t *testing.T) {
	p := minoaner.New(mrConfig("local"))
	defer p.Close()
	w := goldenWorld(t)
	var docs []minoaner.Description
	for id := 0; id < w.Collection.Len(); id++ {
		d := w.Collection.Desc(id)
		docs = append(docs, minoaner.Description{KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
	}
	if err := p.Add(docs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.StartContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if p.Current() != nil {
		t.Fatal("cancelled Start left a session behind")
	}
	if _, err := p.Start(); err != nil {
		t.Fatalf("pipeline unusable after cancelled Start: %v", err)
	}
}

// TestIngestContextCancelled: cancellation once the mutation is
// committed to the batch poisons the session — the front end can no
// longer reconcile — with an error carrying both ErrDesynced and the
// cancellation, and every later mutation returns the same poison.
func TestIngestContextCancelled(t *testing.T) {
	p := minoaner.New(mrConfig("local"))
	defer p.Close()
	ops := recoveryOps(t, 8)
	applyOp(t, p, ops[0])
	applyOp(t, p, ops[1]) // start
	s := p.Current()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.IngestContext(ctx, ops[2].ingest)
	if !errors.Is(err, minoaner.ErrDesynced) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want ErrDesynced wrapping context.Canceled", err)
	}
	if again := s.Ingest(ops[3].ingest); !errors.Is(again, minoaner.ErrDesynced) {
		t.Fatalf("poison not sticky: %v", again)
	}

	// An un-cancelled context mutates normally and digests identically to
	// the context-free path.
	fresh := minoaner.New(mrConfig("local"))
	defer fresh.Close()
	applyOp(t, fresh, ops[0])
	applyOp(t, fresh, ops[1])
	fs := fresh.Current()
	if err := fs.IngestContext(context.Background(), ops[2].ingest); err != nil {
		t.Fatal(err)
	}
	if err := fs.EvictContext(context.Background(), []minoaner.Ref{
		{KB: ops[2].ingest[0].KB, URI: ops[2].ingest[0].URI}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.EvictKBContext(context.Background(), "nope"); !errors.Is(err, minoaner.ErrUnknownKB) {
		t.Fatalf("EvictKBContext: err=%v, want ErrUnknownKB", err)
	}
}

// TestMRGaugesAcrossRunners: the MapReduce gauges move on both runners
// (shuffle bytes are runner-independent), mrWorkers counts spawned
// subprocesses only on proc, and non-MR sessions keep all three at
// zero.
func TestMRGaugesAcrossRunners(t *testing.T) {
	ops := recoveryOps(t, 8)
	gauges := func(cfg minoaner.Config) minoaner.Gauges {
		p := minoaner.New(cfg)
		t.Cleanup(func() { p.Close() })
		for _, op := range ops {
			applyOp(t, p, op)
		}
		return p.Current().Gauges()
	}

	local := gauges(mrConfig("local"))
	if local.MRShuffleBytes == 0 {
		t.Errorf("local runner: mrShuffleBytes=0: %+v", local)
	}
	if local.MRWorkers != 0 {
		t.Errorf("local runner spawned workers: %+v", local)
	}

	proc := gauges(mrConfig("proc"))
	if proc.MRWorkers == 0 {
		t.Errorf("proc runner: mrWorkers=0: %+v", proc)
	}
	if proc.MRShuffleBytes != local.MRShuffleBytes {
		t.Errorf("shuffle bytes differ across runners: proc %d, local %d — the gauge is not runner-independent",
			proc.MRShuffleBytes, local.MRShuffleBytes)
	}

	shared := minoaner.Defaults()
	shared.Workers = 4
	if g := gauges(shared); g.MRWorkers != 0 || g.MRRetries != 0 || g.MRShuffleBytes != 0 {
		t.Errorf("shared engine reports MR gauges: %+v", g)
	}
}
