package minoaner_test

import (
	"fmt"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// hardSessionWorld is the center+periphery workload with links, where
// neighbor-evidence discovery and rechecks actually fire — the step
// kinds whose leg-boundary behavior this file pins down.
func hardSessionWorld(t *testing.T, seed int64, n int) *datagen.World {
	t.Helper()
	w, err := datagen.Generate(datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Center()},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func loadSession(t *testing.T, w *datagen.World, cfg minoaner.Config) *minoaner.Session {
	t.Helper()
	p := minoaner.New(cfg)
	for _, name := range []string{"alpha", "betaKB"} {
		doc, err := rdf.WriteString(w.Triples(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameResult(t *testing.T, label string, want, got *minoaner.Result) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats differ:\n  want %+v\n  got  %+v", label, want.Stats, got.Stats)
	}
	if len(want.Matches) != len(got.Matches) {
		t.Fatalf("%s: %d matches, want %d", label, len(got.Matches), len(want.Matches))
	}
	for i := range want.Matches {
		if want.Matches[i] != got.Matches[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got.Matches[i], want.Matches[i])
		}
	}
	if len(want.Clusters) != len(got.Clusters) {
		t.Fatalf("%s: %d clusters, want %d", label, len(got.Clusters), len(want.Clusters))
	}
}

// TestSessionLegsConcatenate pins the documented Session property:
// successive Resume(k) legs are one pay-as-you-go run, so after legs
// k1..kn the cumulative result equals a single ResolveBudget(k1+…+kn)
// — rechecks and neighbor-evidence discoveries included, even when
// the evidence arises in one leg and the re-examination runs in a
// later one. Swept across worker counts: the parallel matching engine
// must keep the same leg semantics.
func TestSessionLegsConcatenate(t *testing.T) {
	w := hardSessionWorld(t, 65, 150)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := minoaner.Defaults()
			cfg.Workers = workers

			legs := []int{120, 1, 7, 200}
			s := loadSession(t, w, cfg)
			var cum *minoaner.Result
			var err error
			sum := 0
			for _, leg := range legs {
				if cum, err = s.Resume(leg); err != nil {
					t.Fatal(err)
				}
				sum += leg
				oneShot := loadSession(t, w, cfg)
				whole, err := oneShot.Resume(sum)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("after leg sum %d", sum), whole, cum)
			}
			if cum.Stats.Comparisons != sum {
				t.Fatalf("legs executed %d comparisons, budgets sum to %d", cum.Stats.Comparisons, sum)
			}

			// The property must cover the hard step kinds, and the
			// evidence must cross a leg boundary: discoveries or
			// rechecks confirmed after the first leg's budget.
			if cum.Stats.DiscoveredCmps == 0 {
				t.Error("no discovered comparisons executed — workload too easy for this test")
			}
			lateDiscovered, rechecked := 0, 0
			for i, m := range cum.Matches {
				if m.Discovered && i >= legs[0] {
					lateDiscovered++
				}
				if m.Rechecked {
					rechecked++
				}
			}
			if lateDiscovered == 0 && rechecked == 0 {
				t.Error("no discovered or rechecked matches beyond the first leg")
			}

			// Draining the session equals one unbounded run.
			final, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			full := loadSession(t, w, cfg)
			whole, err := full.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "drained session", whole, final)
		})
	}
}
