package minoaner_test

import (
	"os"
	"testing"

	"repro/internal/mapreduce"
)

// TestMain doubles this test binary as a MapReduce worker: a spawned
// copy (the proc runner's subprocess) serves the task protocol instead
// of re-running the suite, and the parent points the runner's worker
// command at itself. Every proc-runner pipeline in the suite — the
// differential matrix above all — depends on this hook.
func TestMain(m *testing.M) {
	mapreduce.InitTestWorker()
	os.Exit(m.Run())
}
