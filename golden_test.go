package minoaner_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/pipeline"
	"repro/internal/tokenize"
)

// The golden digests pin the full resolution semantics — every
// executed comparison with its exact score bits, and the final
// clustering — for a fixed generated corpus under the default
// configuration. A pipeline refactor that changes any observable of
// the resolution (schedule order, scores, decisions, clusters) breaks
// them; bit-identical refactors (parallel engines, incremental
// ingestion) keep them.
//
// If a change is *supposed* to alter resolution semantics, run the
// test and paste the printed digests here.
const (
	goldenTraceDigest   = "aff4fcab029fa2f5f0aded81047ed431bfe0a81a719018e9e855e4702298f113"
	goldenClusterDigest = "1d7d5b0fe805767776c401d0dc43b5e77a748b79a3d86e4fe8704725c40e4646"
)

// goldenWorld is the pinned corpus: the cmd/datagen-style two-KB world
// with links, seed 2016.
func goldenWorld(t *testing.T) *datagen.World {
	t.Helper()
	w, err := datagen.Generate(datagen.Config{
		Seed:        2016,
		NumEntities: 120,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Center()},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGoldenResolution(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The digests pin exact float bits. Score accumulation uses
		// fusable multiply-adds, which the Go spec lets other
		// architectures (arm64) contract into FMA — same semantics,
		// different last-ulp bits. CI pins amd64.
		t.Skipf("golden digests are amd64 float bits; GOARCH=%s fuses differently", runtime.GOARCH)
	}
	w := goldenWorld(t)

	// Full trace at the core level: every executed comparison, not just
	// the confirmed matches.
	fe, err := pipeline.Run(pipeline.Sequential{}, w.Collection, pipeline.Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	res := core.NewResolver(m, fe.Edges, core.DefaultConfig()).Run()
	var tb strings.Builder
	for _, s := range res.Trace {
		fmt.Fprintf(&tb, "%d %d %016x %v %v %v %v\n",
			s.A, s.B, math.Float64bits(s.Score), s.Matched, s.Merged, s.Discovered, s.Recheck)
	}
	traceDigest := sha256digest(tb.String())

	// Final clusters at the public level, scores included.
	p := minoaner.New(minoaner.Defaults())
	for _, name := range []string{"alpha", "betaKB"} {
		var docs []minoaner.Description
		for id := 0; id < w.Collection.Len(); id++ {
			d := w.Collection.Desc(id)
			if d.KB == name {
				docs = append(docs, minoaner.Description{
					KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
				})
			}
		}
		if err := p.Add(docs); err != nil {
			t.Fatal(err)
		}
	}
	out, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	clusterDigest := resultDigest(out)

	if traceDigest != goldenTraceDigest || clusterDigest != goldenClusterDigest {
		t.Errorf("golden digests changed:\n  trace   %s\n  want    %s\n  cluster %s\n  want    %s\n"+
			"resolution semantics moved — if intended, update the constants",
			traceDigest, goldenTraceDigest, clusterDigest, goldenClusterDigest)
	}
	// Keep the pinned workload meaningful: it must exercise discovery
	// and produce a real clustering.
	if res.Discovered == 0 || len(out.Clusters) == 0 {
		t.Error("golden corpus no longer exercises discovery — regenerate it")
	}
}

func sha256digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// resultDigest canonicalizes a public Result — matches with exact
// score bits, clusters, stats — into the SHA-256 the golden constants
// pin. It reads only KB/URI references, never internal ids, so any
// session whose resolution semantics equal the golden run reproduces
// it, however its ids came to be assigned.
func resultDigest(out *minoaner.Result) string {
	var cb strings.Builder
	for _, mt := range out.Matches {
		fmt.Fprintf(&cb, "M %s/%s %s/%s %016x %v %v\n",
			mt.A.KB, mt.A.URI, mt.B.KB, mt.B.URI, math.Float64bits(mt.Score), mt.Discovered, mt.Rechecked)
	}
	for _, c := range out.Clusters {
		cb.WriteString("C")
		for _, r := range c {
			cb.WriteString(" " + r.KB + "/" + r.URI)
		}
		cb.WriteString("\n")
	}
	fmt.Fprintf(&cb, "S %+v\n", out.Stats)
	return sha256digest(cb.String())
}
