package minoaner_test

import (
	"fmt"
	"testing"

	minoaner "repro"
)

// forceDensity evicts live descriptions (skipping the keep-set) until
// the session has compacted at least once, returning the evicted
// reference set. Fails the test if the corpus drains first — the
// threshold was never reached, meaning compaction is broken.
func forceCompaction(t *testing.T, s *minoaner.Session, all []minoaner.Description, gone map[string]bool) {
	t.Helper()
	for _, d := range all {
		if s.Compactions() > 0 {
			return
		}
		r := minoaner.Ref{KB: d.KB, URI: d.URI}
		if gone[refKey(r)] {
			continue
		}
		if err := s.Evict([]minoaner.Ref{r}); err != nil {
			t.Fatal(err)
		}
		gone[refKey(r)] = true
	}
	t.Fatal("corpus drained without a compaction epoch")
}

// TestCompactionEquivalentToFromScratch is the epoch headline
// guarantee at the public API: a session that crossed one or more
// compaction epochs — its internal ids re-based onto a fresh dense
// space — resolves to exactly what a from-scratch session over the
// surviving corpus produces, for any worker count. Ingesting after the
// epoch must also work: the rebuilt front-end state keeps streaming.
func TestCompactionEquivalentToFromScratch(t *testing.T) {
	w := hardSessionWorld(t, 681, 120)
	all := streamDescriptions(w)
	seedN := len(all) / 2
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := minoaner.Defaults()
			cfg.Workers = workers
			cfg.CompactionThreshold = 0.25

			p := minoaner.New(cfg)
			if err := p.Add(all[:seedN]); err != nil {
				t.Fatal(err)
			}
			s, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			gone := make(map[string]bool)
			forceCompaction(t, s, all[:seedN], gone)
			if s.Compactions() == 0 {
				t.Fatal("threshold 0.25 never compacted")
			}
			// The session must keep streaming over the re-based id space.
			if err := s.Ingest(all[seedN:]); err != nil {
				t.Fatal(err)
			}
			got, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}

			p2 := minoaner.New(cfg)
			if err := p2.Add(survivors(all, gone)); err != nil {
				t.Fatal(err)
			}
			want, err := p2.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "compaction-vs-scratch", want, got)
		})
	}
}

// TestCompactionPreservesSpentMatches pins the trace remap and the Ref
// stability property: matches confirmed before a compaction epoch
// survive it with identical references — the epoch moves internal ids
// only, never the KB + URI identity any result is reported under.
func TestCompactionPreservesSpentMatches(t *testing.T) {
	w := hardSessionWorld(t, 682, 130)
	all := streamDescriptions(w)
	cfg := minoaner.Defaults()
	cfg.Workers = 4
	cfg.CompactionThreshold = 0.3

	p := minoaner.New(cfg)
	if err := p.Add(all); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := s.Resume(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Matches) == 0 {
		t.Fatal("no matches before the epoch — workload too easy for this test")
	}
	gone := make(map[string]bool)
	forceCompaction(t, s, all, gone)
	final, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	surviving := 0
	for _, m := range mid.Matches {
		if gone[refKey(m.A)] || gone[refKey(m.B)] {
			continue
		}
		surviving++
		found := false
		for _, m2 := range final.Matches {
			if m2.A == m.A && m2.B == m.B {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("surviving match %v == %v lost across a compaction epoch", m.A, m.B)
		}
	}
	if surviving == 0 {
		t.Fatal("compaction evicted every early match — workload too easy for this test")
	}
	// Every reported reference must resolve in the compacted snapshot:
	// lookups go KB + URI → current internal id, so a stale mapping
	// would surface here.
	snap := s.Snapshot()
	for _, c := range final.Clusters {
		for _, r := range c {
			if _, ok := snap.Cluster(r.KB, r.URI); !ok {
				t.Fatalf("reference %v unresolvable after compaction", r)
			}
		}
	}
}

// TestCompactionTTLDefaultOn pins the default: a TTL session compacts
// at tombstone density ½ without any configuration — the sliding
// window is exactly the workload that otherwise accretes dead ids
// without bound. The window equivalence oracle of TestEvictTTL already
// ran above; here the epoch counter proves the default fired.
func TestCompactionTTLDefaultOn(t *testing.T) {
	w := hardSessionWorld(t, 683, 120)
	all := streamDescriptions(w)
	cfg := minoaner.Defaults()
	cfg.TTL = 1
	p := minoaner.New(cfg)
	if err := p.Add(all[:len(all)/3]); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(all[len(all)/3 : 2*len(all)/3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(all[2*len(all)/3:]); err != nil {
		t.Fatal(err)
	}
	if s.Compactions() == 0 {
		t.Fatal("TTL session never compacted under the default threshold")
	}
	if _, err := s.Resume(0); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionDisabled pins the off switches: a negative threshold
// disables compaction even under TTL, and the zero default disables it
// for sessions without TTL no matter how dense the tombstones get.
func TestCompactionDisabled(t *testing.T) {
	w := hardSessionWorld(t, 684, 80)
	all := streamDescriptions(w)

	cfg := minoaner.Defaults()
	cfg.TTL = 1
	cfg.CompactionThreshold = -1
	p := minoaner.New(cfg)
	if err := p.Add(all[:len(all)/2]); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(all[len(all)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(all[:10]); err != nil { // slides the window again
		t.Fatal(err)
	}
	if s.Compactions() != 0 {
		t.Fatal("negative threshold still compacted")
	}

	cfg2 := minoaner.Defaults()
	p2 := minoaner.New(cfg2)
	if err := p2.Add(all); err != nil {
		t.Fatal(err)
	}
	s2, err := p2.Start()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all[:len(all)*3/4] {
		if err := s2.Evict([]minoaner.Ref{{KB: d.KB, URI: d.URI}}); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Compactions() != 0 {
		t.Fatal("non-TTL session compacted under the zero default")
	}
	if _, err := s2.Resume(0); err != nil {
		t.Fatal(err)
	}
}
